"""Hand-coded memoizing out-of-order simulator — the FastSim analogue.

This implements the same micro-architecture model as
:mod:`repro.ooo.reference`, but applies the paper's fast-forwarding
technique *by hand* (as the original FastSim did, ASPLOS'98): per
simulated cycle, the run-time static pipeline state forms a key into a
memo table; the recorded value is the compact sequence of **dynamic
events** the cycle performed:

``STAT``    cycle/retire counter deltas (run-time static payload);
``EXEC``    functionally execute one pre-decoded instruction;
``ANNUL``   re-sequence past an annulled delay slot;
``CACHE``   data-cache access — *dynamic result test* on the latency;
``BPRED``   conditional-branch resolution — test on (taken, correct);
``BIND``    indirect-jump resolution — test on (target, correct);
``BCALL``   push a return address on the RAS.

Replay applies events with no decode and no pipeline bookkeeping.  When
a dynamic result test observes a value with no recorded continuation,
the simulator recovers exactly as the paper describes (§2.1): it
re-materializes the run-time static state from the entry key, re-runs
the slow cycle feeding the already-replayed dynamic results back from a
recovery list (never re-executing their effects or extern calls), and
resumes normal recording at the miss fork.

Per-key records form a tree: straight-line event runs with a dynamic
result test at each fork, one successor per observed value — the same
structure as Figure 2's specialized action cache.  Complete chains link
cycle to cycle through ``next_key``, so steady-state execution replays
entire loops without touching the bookkeeping at all.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass

from ..facile.runtime import (
    PACKED_JUMP_BYTES,
    PACKED_SLOT_BYTES,
    PACKED_TABLE_OVERHEAD,
    InternPool,
)
from ..isa import sparclite as S
from ..isa.funcsim import FunctionalSim
from ..isa.program import Program
from . import common as C

# Event kinds.
EV_STAT = 0
EV_EXEC = 1
EV_ANNUL = 2
EV_CACHE = 3
EV_BPRED = 4
EV_BIND = 5
EV_BCALL = 6

CHECK_KINDS = frozenset((EV_CACHE, EV_BPRED, EV_BIND))

# Packed-slot kind encodings (see _PackedCycle): plain events keep
# their EV_* kind; a dynamic result test on EV_k packs as FS_CHECK_BASE
# + k; FS_END marks the end of the cycle (successor lane indexes
# ``next_keys``).
FS_CHECK_BASE = 8
FS_END = 64


class _Node:
    """A run of non-test events ending in either a dynamic result test
    (with per-value successor nodes) or the next cycle's key.

    ``stamp``, ``nbytes``, ``key_cost``, and ``packed`` are meaningful
    on root nodes only: the age generation of the entry (for
    generational eviction), the exact bytes charged against it (for the
    eviction refund), the accounted key size, and the flat-packed form
    of the whole cycle tree once recording completed."""

    __slots__ = (
        "events", "check", "succ", "next_key", "stamp", "nbytes",
        "key_cost", "packed", "cnative",
    )

    def __init__(self) -> None:
        self.events: list[tuple] = []
        self.check: tuple | None = None
        self.succ: dict = {}
        self.next_key: tuple | None = None
        self.stamp = 0
        self.nbytes = 0
        self.key_cost = 0
        self.packed: _PackedCycle | None = None
        # C-kernel chain id once lowered (-1: proved unlowerable).
        self.cnative: int | None = None


class _PackedCycle:
    """One complete cycle tree, flat-packed — the same parallel-stream
    layout as :class:`repro.facile.runtime.PackedChain`, so the
    hand-coded ablation baseline carries the identical encoding:

    * ``kinds[i]``   — EV_* for a plain event, ``FS_CHECK_BASE + EV_*``
      for a dynamic result test, :data:`FS_END` at the cycle boundary;
    * ``payload[i]`` — :class:`InternPool` index of the event tuple
      (plain) or check payload (test); -1 at FS_END;
    * ``succ[i]``    — 0 for plain events (fall through), the pool
      index of the single expected value (match falls through) or
      ``~t`` into ``tables`` for multi-successor tests, and the
      ``next_keys`` index at FS_END.

    ``local_bytes`` is the accounted entry-local size (slots + jump
    tables); pooled event/value bytes are shared and live in the pool.
    ``next_keys`` values are not billed, matching the unpacked
    accounting, which never billed ``next_key``.

    ``kkinds``/``payload_vals``/``sux`` are the replay view — the
    canonical streams resolved once at pack time (kinds as a plain
    list, payloads as the pooled objects, successors as the expected
    value / shared jump table / next key), so the replay loop never
    touches the pool.  The view aliases pooled and canonical-lane
    objects and carries no accounted bytes; accounting, release, and
    unpack read the canonical streams.

    ``shared`` marks a cycle whose streams are ``memoryview`` slices of
    an mmap-backed snapshot (:mod:`repro.facile.snapshot`); such cycles
    arrive without a replay view (``kkinds is None``), built lazily by
    :func:`_build_cycle_view` on first replay.  A recovery unpack turns
    the entry private (copy-on-miss).
    """

    __slots__ = (
        "kinds", "payload", "succ", "tables", "next_keys",
        "kkinds", "payload_vals", "sux", "local_bytes", "shared",
    )


def _build_cycle_view(chain: "_PackedCycle", pool_values: list) -> None:
    """Materialize the resolved replay view from the canonical streams
    (the lazy path for mmap-loaded cycles; packing builds it inline)."""
    kkinds = list(chain.kinds)
    pstream = chain.payload
    sstream = chain.succ
    tables = chain.tables
    next_keys = chain.next_keys
    n = len(kkinds)
    payload_vals: list = [None] * n
    sux: list = [None] * n
    for i in range(n):
        k = kkinds[i]
        if k == FS_END:
            sux[i] = next_keys[sstream[i]]
            continue
        payload_vals[i] = pool_values[pstream[i]]
        if k >= FS_CHECK_BASE:
            s = sstream[i]
            sux[i] = pool_values[s] if s >= 0 else tables[~s]
    chain.kkinds = kkinds
    chain.payload_vals = payload_vals
    chain.sux = sux


def cycle_ir(chain: "_PackedCycle", pool_values: list):
    """Plan a :class:`_PackedCycle` in the backend-agnostic replay-IR
    vocabulary of :mod:`repro.facile.replay_ir` — the shared chain
    contract both replay twins target.

    Maps the fastsim slot encodings onto the IR step kinds:

    * plain ``EV_*`` events     → ``K_ACTION`` (aux = the EV_* kind);
    * ``FS_CHECK_BASE + EV_k``  → ``K_VERIFY_EQ`` (single expected
      value; match falls through) or ``K_VERIFY_TAB`` (``~t`` shared
      jump table), exactly the Facile ``~num`` verify split;
    * ``FS_END``                → ``K_END`` (aux = ``next_keys`` index).

    Returns ``(kinds, payloads, succ)`` parallel lists where ``kinds``
    holds ``K_*`` codes, ``payloads`` the pooled event/check tuples, and
    ``succ`` the fall-through/expected/table successor per slot.  This
    view is descriptive (tests, inspect); the C lowering path
    (:class:`CFastSimBackend`) marshals the packed streams directly and
    dispatches cache/predictor checks to the kernel's native uarch
    models.
    """
    from ..facile.replay_ir import (
        K_ACTION, K_END, K_VERIFY_EQ, K_VERIFY_TAB,
    )

    kinds: list[int] = []
    payloads: list = []
    succ: list = []
    sstream = chain.succ
    pstream = chain.payload
    for i, k in enumerate(chain.kinds):
        if k == FS_END:
            kinds.append(K_END)
            payloads.append(sstream[i])
            succ.append(None)
        elif k >= FS_CHECK_BASE:
            s = sstream[i]
            if s >= 0:
                kinds.append(K_VERIFY_EQ)
                payloads.append(pool_values[pstream[i]])
                succ.append(pool_values[s])
            else:
                kinds.append(K_VERIFY_TAB)
                payloads.append(pool_values[pstream[i]])
                succ.append(chain.tables[~s])
        else:
            kinds.append(K_ACTION)
            payloads.append(pool_values[pstream[i]])
            succ.append(None)
    return kinds, payloads, succ


class _FsUnlowerable(Exception):
    """This cycle (or this simulator's models) cannot run natively."""


class CFastSimBackend:
    """Native per-cycle replay for the fastsim twin.

    Packed cycles marshal into in-kernel ``FsChain`` lane arrays and a
    single ``ffs_run`` call walks one full cycle: EV_STAT and EV_BCALL
    slots and every cache/predictor check run natively against the
    kernel's uarch models (bound zero-copy over the simulator's own
    ``array('q')`` state), while EV_EXEC/EV_ANNUL slots call back into
    :class:`FunctionalSim` — the functional step is target-semantics
    Python by design; the timing-model callback tax is what this
    removes.  Check results encode as i64 (cache: latency; bpred:
    ``taken*2+correct``; bind: ``target*2+correct``) both in the
    successor lanes and in the kernel's consumed log, which decodes
    back to the recorder's ``(kind, value)`` tuples on a miss.
    """

    def __init__(self, sim: "FastSimOoo"):
        import ctypes

        from ..facile import cbackend as cb

        kernel = cb.load_kernel()
        if not kernel.status.available:
            raise _FsUnlowerable(kernel.status.reason or "C kernel unavailable")
        self.sim = sim
        self.lib = kernel.lib
        self._cb = cb
        self._ctypes = ctypes
        st = self.lib.ffc_new()
        if not st:
            raise _FsUnlowerable("ffc_new failed")
        self._st_p = ctypes.c_void_p(st)
        self._st = ctypes.cast(
            self._st_p, ctypes.POINTER(cb._StPrefix)
        ).contents
        self._fs_cb = cb.FS_CB(self._on_event)
        self.lib.ffs_set_cb(self._st_p, self._fs_cb)
        self._exit = cb.FfcExit()
        self._exc: BaseException | None = None
        self._cur_payloads: list | None = None
        self._keepalive: list = []
        self._drain: list = []
        self._payloads: dict[int, list] = {}
        self._shapes: dict[int, tuple] = {}
        self._ends: dict[int, list] = {}
        self.runs = 0
        self.native_events = 0
        self.chains_lowered = 0
        self.chains_unlowerable = 0
        nxids = []
        try:
            for name, model in (
                ("xbpred", sim.predictor),
                ("xbind", sim.predictor),
                ("xcache", sim.cache),
            ):
                plan = cb._nx_lower(name, model)
                if plan is None:
                    raise _FsUnlowerable(
                        "uarch models not natively supported"
                    )
                kind, params, arrays, drain = plan
                pbuf = array("q", params) if params else None
                nxid = self.lib.ffc_nx_add(
                    self._st_p, kind,
                    cb._q_ptr(pbuf) if pbuf is not None else None,
                    len(params),
                )
                if nxid < 0:
                    raise _FsUnlowerable("native model registry full")
                for slot, arr in arrays.items():
                    addr, n = arr.buffer_info()
                    self.lib.ffc_nx_set_arr(
                        self._st_p, nxid, slot,
                        ctypes.cast(addr, cb._PLL), n,
                    )
                self._keepalive.append((pbuf, list(arrays.values())))
                for m in drain:
                    if not any(m is d for d in self._drain):
                        self._drain.append(m)
                nxids.append(nxid)
        except _FsUnlowerable:
            self.close()
            raise
        self.lib.ffs_set_models(self._st_p, nxids[0], nxids[1], nxids[2])

    def close(self) -> None:
        if self._st_p:
            self.lib.ffc_free(self._st_p)
            self._st_p = self._ctypes.c_void_p(0)

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- lowering --------------------------------------------------------

    @staticmethod
    def _encode(kind: int, value) -> int:
        if kind == EV_CACHE:
            if type(value) is bool or type(value) is not int:
                raise _FsUnlowerable(f"non-int cache latency {value!r}")
            return value
        if type(value) is not tuple or len(value) != 2:
            raise _FsUnlowerable(f"bad check value {value!r}")
        first, correct = value
        if kind == EV_BPRED:
            return (2 if first else 0) + (1 if correct else 0)
        if type(first) is bool or type(first) is not int or first < 0:
            raise _FsUnlowerable(f"bad bind target {value!r}")
        return first * 2 + (1 if correct else 0)

    @staticmethod
    def _decode(kind: int, v: int):
        if kind == EV_CACHE:
            return int(v)
        if kind == EV_BPRED:
            return (bool(v & 2), bool(v & 1))
        return (int(v) >> 1, bool(v & 1))

    def _lower(self, root: _Node) -> int | None:
        cn = root.cnative
        if cn is not None:
            return cn if cn >= 0 else None
        try:
            fsid = self._marshal(root)
        except (_FsUnlowerable, TypeError, OverflowError):
            root.cnative = -1
            self.chains_unlowerable += 1
            return None
        root.cnative = fsid
        self.chains_lowered += 1
        return fsid

    def _marshal(self, root: _Node) -> int:
        chain = root.packed
        if chain.kkinds is None:
            _build_cycle_view(chain, self.sim.pool.values)
        kk = chain.kkinds
        pv = chain.payload_vals
        sux = chain.sux
        n = len(kk)
        kinds = array("q", kk)
        a0 = array("q", bytes(8 * n))
        a1 = array("q", bytes(8 * n))
        a2 = array("q", bytes(8 * n))
        tables: list[dict] = []
        ends: list[tuple] = []
        for i, k in enumerate(kk):
            if k == FS_END:
                a0[i] = len(ends)
                ends.append(sux[i])
            elif k >= FS_CHECK_BASE:
                ek = k - FS_CHECK_BASE
                if ek == EV_CACHE or ek == EV_BIND:
                    a2[i] = 1 if pv[i][0] else 0
                sx = sux[i]
                if sx.__class__ is dict:
                    enc = {
                        self._encode(ek, value): tgt
                        for value, tgt in sx.items()
                    }
                    if len(enc) != len(sx):
                        raise _FsUnlowerable("ambiguous check encoding")
                    a0[i] = 1
                    a1[i] = len(tables)
                    tables.append(enc)
                else:
                    a0[i] = 0
                    a1[i] = self._encode(ek, sx)
            else:
                ev = pv[i]
                if k == EV_STAT:
                    a0[i] = ev[1]
                    a1[i] = ev[2]
                elif k == EV_EXEC or k == EV_ANNUL:
                    a0[i] = i
                else:  # EV_BCALL
                    a0[i] = ev[1]
        toff = array("q", bytes(8 * len(tables)))
        tlen = array("q", bytes(8 * len(tables)))
        tkeys = array("q")
        ttgt = array("q")
        for t, tb in enumerate(tables):
            toff[t] = len(tkeys)
            tlen[t] = len(tb)
            for value, tgt in tb.items():
                tkeys.append(value)
                ttgt.append(tgt)
        q = self._cb._q_ptr
        fsid = self.lib.ffs_add_chain(
            self._st_p, n, q(kinds), q(a0), q(a1), q(a2),
            len(tables), q(toff), q(tlen), q(tkeys), len(tkeys), q(ttgt),
        )
        if fsid < 0:
            raise _FsUnlowerable("kernel out of memory")
        self._payloads[fsid] = pv
        self._shapes[fsid] = (kk, a0, a1, tables)
        self._ends[fsid] = ends
        return fsid

    # -- invalidation hooks ----------------------------------------------

    def drop_root(self, root: _Node) -> None:
        cn = root.cnative
        root.cnative = None
        if cn is not None and cn >= 0:
            self.lib.ffs_drop_chain(self._st_p, cn)
            self._payloads.pop(cn, None)
            self._shapes.pop(cn, None)
            self._ends.pop(cn, None)

    def drop_all(self) -> None:
        self.lib.ffs_drop_all(self._st_p)
        self._payloads.clear()
        self._shapes.clear()
        self._ends.clear()

    # -- execution -------------------------------------------------------

    def _on_event(self, op, slot):
        try:
            func = self.sim.func
            if op:
                func.step()
                return 0
            ev = self._cur_payloads[slot]
            info = func.exec_decoded(ev[2], ev[1])
            st = self._st
            st.fs_pc = info.pc
            st.fs_taken = 1 if info.taken else 0
            target = info.target
            st.fs_target = target if target is not None else 0
            mem_addr = info.mem_addr
            st.fs_memaddr = mem_addr if mem_addr is not None else 0
            return 0
        except BaseException as exc:  # ctypes swallows exceptions
            self._exc = exc
            return -1

    def _decode_consumed(self, fsid: int) -> list[tuple]:
        """Reconstruct the recorder's consumed-event list by re-walking
        the chain shape against the kernel's logged check values."""
        st = self._st
        vals = [st.consumed[j] for j in range(st.nconsumed)]
        kk, a0, a1, tables = self._shapes[fsid]
        consumed: list[tuple] = []
        i = 0
        vi = 0
        nvals = len(vals)
        while vi < nvals:
            k = kk[i]
            if k < FS_CHECK_BASE:
                consumed.append((k, None))
                i += 1
                continue
            ek = k - FS_CHECK_BASE
            v = vals[vi]
            vi += 1
            consumed.append((ek, self._decode(ek, v)))
            if vi == nvals:
                break  # the missed check
            if a0[i] == 0:
                i += 1
            else:
                i = tables[a1[i]][v]
        return consumed

    def run_root(self, key: tuple, root: _Node):
        """Replay one cycle natively; returns the next key, or None to
        fall back to the Python replay loop for this cycle."""
        fsid = self._lower(root)
        if fsid is None:
            return None
        sim = self.sim
        st = self._st
        stats = sim.stats
        st.cycles = stats.cycles
        st.retired_total = stats.retired
        st.retired_fast = sim.retired_fast
        st.fs_loads = 0
        st.fs_stores = 0
        st.fs_branches = 0
        st.fs_mispred = 0
        self._exc = None
        self._cur_payloads = self._payloads[fsid]
        ex = self._exit
        self.lib.ffs_run(self._st_p, fsid, self._ctypes.byref(ex))
        stats.cycles = st.cycles
        stats.retired = st.retired_total
        sim.retired_fast = st.retired_fast
        stats.loads += st.fs_loads
        stats.stores += st.fs_stores
        stats.branches += st.fs_branches
        stats.mispredicts += st.fs_mispred
        for model in self._drain:
            model.drain_stats()
        self.runs += 1
        mstats = sim.mstats
        if ex.code == 4:  # X_ERR
            exc = self._exc
            self._exc = None
            if exc is not None:
                raise exc
            raise RuntimeError(f"fastsim C kernel error {ex.err}")
        self.native_events += ex.actions
        mstats.events_replayed += ex.actions
        if ex.code == 1:  # clean FS_END
            mstats.cycles_fast += 1
            return self._ends[fsid][ex.end_ix]
        # Check miss: decode the consumed prefix, thaw the entry, and
        # recover through the slow simulator exactly as _replay_packed.
        consumed = self._decode_consumed(fsid)
        mstats.misses_check += 1
        mstats.cycles_recovered += 1
        sim._materialize(key)
        sim._unpack_root(root)  # drops this chain via the hook
        return sim._slow_cycle(record=True, root=root, recovery=consumed)

    def summary(self) -> dict:
        return {
            "chains_lowered": self.chains_lowered,
            "chains_unlowerable": self.chains_unlowerable,
            "runs": self.runs,
            "native_events": self.native_events,
        }


@dataclass
class MemoStats:
    entries: int = 0
    events_recorded: int = 0
    events_replayed: int = 0
    cycles_fast: int = 0
    cycles_slow: int = 0
    cycles_recovered: int = 0
    misses_new_key: int = 0
    misses_check: int = 0
    bytes_estimate: int = 0
    #: Total bytes ever charged for recording (keys, events, checks,
    #: recovery forks).  Never decremented by clears, evictions, or
    #: pack/unpack re-accounting — the memoized-data *volume* Table 2
    #: reports, mirroring ``CacheStats.bytes_cumulative`` on the facile
    #: side so the two simulators' columns compare the same metric.
    bytes_cumulative: int = 0
    packs: int = 0
    unpacks: int = 0
    clears: int = 0
    evictions: int = 0
    entries_evicted: int = 0
    bytes_refunded: int = 0
    #: Bytes of ``bytes_estimate`` billed to mmap-backed (shared)
    #: packed cycles; the rest is process-private.  Decremented when a
    #: shared entry is unpacked (copy-on-miss) or evicted.
    bytes_shared: int = 0
    #: Entries installed from a snapshot load.
    snapshot_entries: int = 0
    #: Snapshot files rejected (stale/corrupt/mismatched) — each fell
    #: back to a cold start.
    snapshot_rejected: int = 0


@dataclass
class _Entry:
    cls: int
    state: int
    remaining: int
    dep1: int
    dep2: int
    pc: int


class FastSimOoo:
    """The memoizing OOO simulator.  ``memoize=False`` degrades it to a
    conventional simulator (the paper's 'without memoization' bars)."""

    def __init__(
        self,
        program: Program,
        config: C.MachineConfig | None = None,
        memoize: bool = True,
        memo_limit_bytes: int | None = None,
        memo_evict: str = "clear",
        memo_low_watermark: float = 0.5,
        cache=None,
        predictor=None,
        flat_pack: bool = True,
        replay_backend: str = "python",
    ):
        if memo_evict not in ("clear", "generational"):
            raise ValueError(f"unknown eviction policy {memo_evict!r}")
        if replay_backend not in ("python", "c"):
            raise ValueError(f"unknown replay backend {replay_backend!r}")
        self.config = config or C.MachineConfig()
        self.program = program
        default_cache, default_pred = C.default_uarch(self.config)
        self.cache = cache if cache is not None else default_cache
        self.predictor = predictor if predictor is not None else default_pred
        self.func = FunctionalSim.for_program(program)
        self.window: list[_Entry] = []
        self.last_writer = [-1] * 33
        self.stall = 0
        self.fetch_halted = False
        self.stats = C.OooStats()
        self.memoize = memoize
        self.flat_pack = flat_pack
        self.pool = InternPool()
        self.memo: dict[tuple, _Node] = {}
        self.memo_limit_bytes = memo_limit_bytes
        self.memo_evict = memo_evict
        self.memo_low_watermark = memo_low_watermark
        self.mstats = MemoStats()
        self.retired_fast = 0
        self._decode_cache: dict[int, S.Decoded] = {}
        self._pending_retire = 0
        # Age generation for eviction (mirrors ActionCache.gen).
        self.gen = 0
        self._gen_step = (
            max(memo_limit_bytes // 8, 1) if memo_limit_bytes else 0
        )
        self._since_gen = 0
        # Snapshot bookkeeping: keepalive handles for mmap-backed
        # streams, and the info records of the last load/save.
        self.snapshots: list = []
        self.snapshot_load = None
        self.snapshot_save = None
        # A "c" request lowers packed chains into the C kernel, with the
        # uarch models registered as native externs; only EV_EXEC and
        # EV_ANNUL events call back into FunctionalSim.  Degrades to the
        # Python loop with a reported reason when the kernel is missing
        # or the models don't match a registered native kind.
        self._cnative: CFastSimBackend | None = None
        status = {
            "requested": replay_backend,
            "active": "python",
            "reason": "",
            "compile_ms": 0.0,
        }
        if replay_backend == "c":
            if not memoize:
                status["reason"] = "memoization disabled"
            elif not flat_pack:
                status["reason"] = "flat packing disabled"
            else:
                import time as _time

                t0 = _time.perf_counter()
                try:
                    self._cnative = CFastSimBackend(self)
                except _FsUnlowerable as exc:
                    status["reason"] = str(exc)
                else:
                    status["active"] = "c"
                    status["compile_ms"] = (_time.perf_counter() - t0) * 1e3
        self.backend_status = status

    # -- key handling ----------------------------------------------------------

    def state_key(self) -> tuple:
        window_sig = tuple(
            (e.cls, e.state, e.remaining, e.dep1, e.dep2, e.pc) for e in self.window
        )
        return (
            window_sig,
            tuple(self.last_writer),
            self.func.pc,
            self.func.npc,
            self.func._annul_next,
            self.stall,
            self.fetch_halted,
        )

    def _materialize(self, key: tuple) -> None:
        window_sig, lw, pc, npc, annul, stall, fetch_halted = key
        self.window = [_Entry(*sig) for sig in window_sig]
        self.last_writer = list(lw)
        self.func.pc = pc
        self.func.npc = npc
        self.func._annul_next = annul
        self.stall = stall
        self.fetch_halted = fetch_halted

    def _decode_at(self, pc: int) -> S.Decoded:
        d = self._decode_cache.get(pc)
        if d is None:
            d = S.decode(self.func.mem.read32(pc))
            self._decode_cache[pc] = d
        return d

    @staticmethod
    def _key_is_done(key: tuple) -> bool:
        return bool(key[6]) and not key[0]

    # -- driving -----------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.fetch_halted and not self.window

    def run(self, max_cycles: int = 10_000_000) -> C.OooStats:
        if not self.memoize:
            while not self.done and self.stats.cycles < max_cycles:
                self._slow_cycle(record=False)
            return self.stats
        key = self.state_key()
        while not self._key_is_done(key) and self.stats.cycles < max_cycles:
            node = self.memo.get(key)
            if node is None:
                self.mstats.misses_new_key += 1
                self.mstats.cycles_slow += 1
                self._materialize(key)
                root = _Node()
                root.stamp = self.gen
                root.key_cost = 8 * (8 + 6 * len(key[0]) + 33)
                self.memo[key] = root
                self.mstats.entries += 1
                self._bill(root, root.key_cost)
                key = self._slow_cycle(record=True, root=root)
            elif node.packed is not None:
                node.stamp = self.gen
                if self._cnative is not None:
                    nk = self._cnative.run_root(key, node)
                    key = nk if nk is not None else self._replay_packed(key, node)
                else:
                    key = self._replay_packed(key, node)
            else:
                node.stamp = self.gen
                key = self._replay(key, node)
            self._maybe_reclaim()
        self._materialize(key)
        return self.stats

    # -- memo accounting / reclamation ----------------------------------------

    def _bill(self, root: _Node, nbytes: int) -> None:
        """Charge ``nbytes`` to the memo table and to ``root``'s entry,
        so eviction can refund the entry's exact accounted size."""
        self.mstats.bytes_estimate += nbytes
        self.mstats.bytes_cumulative += nbytes
        root.nbytes += nbytes
        if self._gen_step:
            self._since_gen += nbytes
            if self._since_gen >= self._gen_step:
                self._since_gen -= self._gen_step
                self.gen += 1

    def recount_bytes(self) -> int:
        """Recompute ``bytes_estimate`` by walking every surviving
        entry's node tree (events, checks, recovery-attached forks) —
        the leak-free-accounting invariant asserted by the tests."""
        total = 0
        for key, root in self.memo.items():
            total += 8 * (8 + 6 * len(key[0]) + 33)
            chain = root.packed
            if chain is not None:
                total += PACKED_SLOT_BYTES * len(chain.kinds) + sum(
                    PACKED_TABLE_OVERHEAD + PACKED_JUMP_BYTES * len(t)
                    for t in chain.tables
                )
                continue
            total += self._tree_cost(root)
        return total + self.pool.recount()

    def recount_shared_bytes(self) -> int:
        """Recompute ``mstats.bytes_shared`` by walking surviving packed
        cycles still backed by an mmap snapshot — the shared-accounting
        analogue of :meth:`recount_bytes`."""
        return sum(
            root.packed.local_bytes
            for root in self.memo.values()
            if root.packed is not None and root.packed.shared
        )

    # -- snapshots -------------------------------------------------------------

    @property
    def snapshot_fingerprint(self) -> str:
        from ..facile.snapshot import fastsim_fingerprint

        return fastsim_fingerprint(self.program, self.config)

    def load_snapshot(self, path, fingerprint: str | None = None):
        from ..facile.snapshot import load_fastsim_memo

        if fingerprint is None:
            fingerprint = self.snapshot_fingerprint
        info = load_fastsim_memo(self, path, fingerprint)
        self.snapshot_load = info
        return info

    def save_snapshot(self, path, fingerprint: str | None = None):
        from ..facile.snapshot import save_fastsim_memo

        if fingerprint is None:
            fingerprint = self.snapshot_fingerprint
        info = save_fastsim_memo(self, path, fingerprint)
        self.snapshot_save = info
        return info

    @staticmethod
    def _tree_cost(root: _Node) -> int:
        """Accounted size of an unpacked node tree, excluding the key
        cost — must match the incremental ``_bill`` charges."""
        total = 0
        stack = [root]
        while stack:
            node = stack.pop()
            total += sum(16 + 8 * len(ev) for ev in node.events)
            if node.check is not None:
                # _check charges 64 (test + first successor); each
                # fork attached during recovery charges 48 more.
                total += 64 + 48 * (len(node.succ) - 1)
            stack.extend(node.succ.values())
        return total

    def _maybe_reclaim(self) -> None:
        if (
            self.memo_limit_bytes is None
            or self.mstats.bytes_estimate <= self.memo_limit_bytes
        ):
            return
        if self.memo_evict == "clear":
            self.memo.clear()
            self.pool.clear()
            if self._cnative is not None:
                self._cnative.drop_all()
            self.mstats.bytes_estimate = 0
            self.mstats.bytes_shared = 0
            self.mstats.clears += 1
            return
        # Generational partial eviction: drop the coldest entries until
        # below the low watermark, refunding their exact charged bytes
        # (including pooled bytes whose last reference this entry held).
        target = int(self.memo_limit_bytes * self.memo_low_watermark)
        mstats = self.mstats
        for key, root in sorted(self.memo.items(), key=lambda kv: kv[1].stamp):
            if mstats.bytes_estimate <= target:
                break
            del self.memo[key]
            refund = self._release_root(root)
            mstats.bytes_estimate -= refund
            mstats.bytes_refunded += refund
            mstats.entries_evicted += 1
        mstats.evictions += 1
        self.gen += 1
        self._since_gen = 0

    def _release_root(self, root: _Node) -> int:
        """Total refund for dropping ``root``: its accounted entry
        bytes plus any pooled bytes it held the last reference to."""
        if self._cnative is not None:
            self._cnative.drop_root(root)
        refund = root.nbytes
        chain = root.packed
        if chain is not None:
            if chain.shared:
                self.mstats.bytes_shared -= chain.local_bytes
            pool = self.pool
            kinds = chain.kinds
            payload = chain.payload
            sstream = chain.succ
            for i in range(len(kinds)):
                k = kinds[i]
                if k == FS_END:
                    continue
                refund += pool.release(payload[i])
                if k >= FS_CHECK_BASE and sstream[i] >= 0:
                    refund += pool.release(sstream[i])
        return refund

    # -- fast replay ----------------------------------------------------------------

    def _replay(self, key: tuple, node: _Node) -> tuple:
        """Replay one recorded cycle; returns the next cycle's key."""
        func = self.func
        consumed: list[tuple] = []
        last_info = None
        while True:
            for ev in node.events:
                kind = ev[0]
                if kind == EV_EXEC:
                    last_info = func.exec_decoded(ev[2], ev[1])
                elif kind == EV_STAT:
                    self.stats.cycles += ev[1]
                    self.stats.retired += ev[2]
                    self.retired_fast += ev[2]
                elif kind == EV_ANNUL:
                    func.step()
                else:  # EV_BCALL
                    self.predictor.note_call(ev[1])
                consumed.append((kind, None))
            self.mstats.events_replayed += len(node.events)
            if node.check is None:
                break
            kind, payload = node.check
            value = self._perform_check(kind, payload, last_info)
            consumed.append((kind, value))
            self.mstats.events_replayed += 1
            nxt = node.succ.get(value)
            if nxt is None:
                # Action-cache miss: recover via the slow simulator.
                self.mstats.misses_check += 1
                self.mstats.cycles_recovered += 1
                self._materialize(key)
                return self._slow_cycle(record=True, root=self.memo[key], recovery=consumed)
            node = nxt
        self.mstats.cycles_fast += 1
        return node.next_key

    def _replay_packed(self, key: tuple, root: _Node) -> tuple:
        """Replay one flat-packed cycle: an index-threaded walk over the
        parallel streams with no node-attribute dispatch.  On a dynamic
        result miss the entry is unpacked back to record form and the
        slow simulator recovers exactly as in :meth:`_replay`."""
        func = self.func
        chain = root.packed
        kinds = chain.kkinds
        if kinds is None:
            # mmap-loaded cycle replayed for the first time: build the
            # resolved view now, so unused entries cost no private RSS.
            _build_cycle_view(chain, self.pool.values)
            kinds = chain.kkinds
        payload_vals = chain.payload_vals
        sux = chain.sux
        stats = self.stats
        mstats = self.mstats
        predictor = self.predictor
        consumed: list[tuple] = []
        last_info = None
        n = 0
        i = 0
        while True:
            k = kinds[i]
            if k < FS_CHECK_BASE:
                ev = payload_vals[i]
                if k == EV_EXEC:
                    last_info = func.exec_decoded(ev[2], ev[1])
                elif k == EV_STAT:
                    stats.cycles += ev[1]
                    stats.retired += ev[2]
                    self.retired_fast += ev[2]
                elif k == EV_ANNUL:
                    func.step()
                else:  # EV_BCALL
                    predictor.note_call(ev[1])
                consumed.append((k, None))
                n += 1
                i += 1
                continue
            if k != FS_END:
                ek = k - FS_CHECK_BASE
                value = self._perform_check(ek, payload_vals[i], last_info)
                consumed.append((ek, value))
                n += 1
                sx = sux[i]
                if sx.__class__ is dict:
                    j = sx.get(value)
                    if j is not None:
                        i = j
                        continue
                elif sx == value:
                    i += 1
                    continue
                # Action-cache miss: thaw the entry back to record
                # form and recover via the slow simulator (which
                # re-packs it at cycle end).
                mstats.events_replayed += n
                mstats.misses_check += 1
                mstats.cycles_recovered += 1
                self._materialize(key)
                self._unpack_root(root)
                return self._slow_cycle(record=True, root=root, recovery=consumed)
            mstats.events_replayed += n
            mstats.cycles_fast += 1
            return sux[i]

    # -- flat packing ----------------------------------------------------------------

    def _pack_root(self, root: _Node) -> None:
        """Flatten a completed cycle tree into parallel streams and
        re-account the entry at its packed size (pooled values billed
        only on first reference)."""
        pool = self.pool
        values = pool.values
        kinds = array("q")
        payload = array("q")
        succ = array("q")
        payload_vals: list = []
        sux: list = []
        tables: list[dict] = []
        next_keys: list[tuple] = []
        pool_charged = 0
        pending = deque([(root, -1, None)])
        while pending:
            node, t_idx, t_key = pending.popleft()
            if t_idx >= 0:
                tables[t_idx][t_key] = len(kinds)
            while True:
                for ev in node.events:
                    idx, charged = pool.intern(ev)
                    pool_charged += charged
                    kinds.append(ev[0])
                    payload.append(idx)
                    succ.append(0)
                    payload_vals.append(values[idx])
                    sux.append(None)
                if node.check is None:
                    kinds.append(FS_END)
                    payload.append(-1)
                    succ.append(len(next_keys))
                    next_keys.append(node.next_key)
                    payload_vals.append(None)
                    sux.append(node.next_key)
                    break
                ck, cpayload = node.check
                idx, charged = pool.intern(cpayload)
                pool_charged += charged
                kinds.append(FS_CHECK_BASE + ck)
                payload.append(idx)
                payload_vals.append(values[idx])
                if len(node.succ) == 1:
                    ((value, nxt),) = node.succ.items()
                    vidx, charged = pool.intern(value)
                    pool_charged += charged
                    succ.append(vidx)
                    # Expected check results are scalars or tuples,
                    # never dicts, so the replay loop discriminates
                    # this fall-through form from a jump table by class.
                    sux.append(values[vidx])
                    node = nxt
                    continue
                table: dict = {}
                tables.append(table)
                succ.append(~(len(tables) - 1))
                sux.append(table)
                for value, nxt in node.succ.items():
                    pending.append((nxt, len(tables) - 1, value))
                break
        chain = _PackedCycle()
        chain.kinds = kinds
        chain.payload = payload
        chain.succ = succ
        chain.tables = tables
        chain.next_keys = next_keys
        chain.kkinds = kinds.tolist()
        chain.payload_vals = payload_vals
        chain.sux = sux
        chain.local_bytes = PACKED_SLOT_BYTES * len(kinds) + sum(
            PACKED_TABLE_OVERHEAD + PACKED_JUMP_BYTES * len(t) for t in tables
        )
        chain.shared = False
        old = root.nbytes
        root.nbytes = root.key_cost + chain.local_bytes
        root.packed = chain
        root.cnative = None
        root.events = []
        root.check = None
        root.succ = {}
        root.next_key = None
        self.mstats.bytes_estimate += root.nbytes + pool_charged - old
        self.mstats.packs += 1

    def _unpack_root(self, root: _Node) -> None:
        """Rebuild the record tree from the packed streams (so the
        recorder can walk it and attach a miss fork), release the pool
        references, and re-account the entry at its unpacked size."""
        if self._cnative is not None:
            self._cnative.drop_root(root)
        chain = root.packed
        kinds = chain.kinds
        pstream = chain.payload
        sstream = chain.succ
        tables = chain.tables
        next_keys = chain.next_keys
        pool = self.pool
        pool_vals = pool.values
        root.events = []
        root.check = None
        root.succ = {}
        root.next_key = None
        pending = deque([(0, root)])
        while pending:
            i, node = pending.popleft()
            while True:
                k = kinds[i]
                if k < FS_CHECK_BASE:
                    node.events.append(pool_vals[pstream[i]])
                    i += 1
                    continue
                if k == FS_END:
                    node.next_key = next_keys[sstream[i]]
                    break
                node.check = (k - FS_CHECK_BASE, pool_vals[pstream[i]])
                s = sstream[i]
                if s >= 0:
                    nxt = _Node()
                    node.succ[pool_vals[s]] = nxt
                    node = nxt
                    i += 1
                    continue
                for value, j in tables[~s].items():
                    child = _Node()
                    node.succ[value] = child
                    pending.append((j, child))
                break
        freed = 0
        for i in range(len(kinds)):
            k = kinds[i]
            if k == FS_END:
                continue
            freed += pool.release(pstream[i])
            if k >= FS_CHECK_BASE and sstream[i] >= 0:
                freed += pool.release(sstream[i])
        old = root.nbytes
        root.nbytes = root.key_cost + self._tree_cost(root)
        root.packed = None
        if chain.shared:
            # Copy-on-miss: the rebuilt tree is process-private; the
            # mmap-backed streams no longer back a live entry.
            self.mstats.bytes_shared -= chain.local_bytes
        self.mstats.bytes_estimate += root.nbytes - old - freed
        self.mstats.unpacks += 1

    def _perform_check(self, kind: int, payload, info) -> tuple | int:
        if kind == EV_CACHE:
            (is_store,) = payload
            if is_store:
                self.stats.stores += 1
            else:
                self.stats.loads += 1
            return self.cache.access(info.mem_addr, self.stats.cycles, is_store)
        if kind == EV_BPRED:
            correct = self.predictor.resolve_branch(info.pc, info.taken)
            self.stats.branches += 1
            if not correct:
                self.stats.mispredicts += 1
            return (info.taken, correct)
        # EV_BIND
        (is_ret,) = payload
        correct = self.predictor.resolve_indirect(info.pc, info.target, is_ret)
        self.stats.branches += 1
        if not correct:
            self.stats.mispredicts += 1
        return (info.target, correct)

    # -- slow path (records; supports miss recovery) -----------------------------------

    def _slow_cycle(self, record: bool, root: _Node | None = None,
                    recovery: list | None = None) -> tuple:
        rec = _Recorder(self, record, root, recovery)
        self._phase_stat(rec)
        self._phase_retire_norm()
        self._phase_execute()
        self._phase_issue()
        self._phase_fetch(rec)
        if not record:
            return ()
        next_key = self.state_key()
        rec.finish(next_key)
        if root is not None and self.flat_pack:
            self._pack_root(root)
        return next_key

    def _phase_stat(self, rec: "_Recorder") -> None:
        k = 0
        while (
            k < self.config.retire_width
            and k < len(self.window)
            and self.window[k].state == C.ST_DONE
        ):
            k += 1
        rec.stat(1, k)
        self._pending_retire = k

    def _phase_retire_norm(self) -> None:
        k = self._pending_retire
        if k == 0:
            return
        del self.window[:k]
        for entry in self.window:
            entry.dep1 = entry.dep1 - k if entry.dep1 >= k else -1
            entry.dep2 = entry.dep2 - k if entry.dep2 >= k else -1
        for reg in range(33):
            w = self.last_writer[reg]
            if w >= 0:
                self.last_writer[reg] = w - k if w >= k else -1

    def _phase_execute(self) -> None:
        for entry in self.window:
            if entry.state == C.ST_EXEC:
                entry.remaining -= 1
                if entry.remaining <= 0:
                    entry.state = C.ST_DONE

    def _phase_issue(self) -> None:
        issued = 0
        fu_used = {group: 0 for group in C.FU_CAPACITY}
        for entry in self.window:
            if issued >= self.config.issue_width:
                break
            if entry.state != C.ST_WAIT:
                continue
            dep1, dep2 = entry.dep1, entry.dep2
            if dep1 >= 0 and self.window[dep1].state != C.ST_DONE:
                continue
            if dep2 >= 0 and self.window[dep2].state != C.ST_DONE:
                continue
            group = C.FU_GROUP[entry.cls]
            if fu_used[group] >= C.FU_CAPACITY[group]:
                continue
            fu_used[group] += 1
            issued += 1
            entry.state = C.ST_EXEC

    def _phase_fetch(self, rec: "_Recorder") -> None:
        if self.stall > 0:
            self.stall -= 1
            return
        if self.fetch_halted:
            return
        fetched = 0
        while fetched < self.config.fetch_width and len(self.window) < self.config.window_size:
            if self.func.halted:
                self.fetch_halted = True
                break
            fetched += 1
            if self.func._annul_next:
                rec.annulled()
                continue
            pc = self.func.pc
            d = self._decode_at(pc)
            info = rec.exec_op(pc, d)
            end_group = self._dispatch(rec, info, d)
            if d.kind in ("halt", "illegal"):
                self.fetch_halted = True
                break
            if end_group:
                break

    def _dispatch(self, rec: "_Recorder", info, d: S.Decoded) -> bool:
        srcs = C.source_regs(d)
        producers = sorted(
            {self.last_writer[r] for r in srcs if self.last_writer[r] >= 0},
            reverse=True,
        )
        dep1 = producers[0] if len(producers) > 0 else -1
        dep2 = producers[1] if len(producers) > 1 else -1

        latency = C.fixed_latency(d.cls, self.config)
        end_group = False
        if d.cls in (S.CLS_LOAD, S.CLS_STORE):
            is_store = d.cls == S.CLS_STORE
            latency = rec.cache_access(info, is_store)
        elif d.kind == "branch":
            taken, correct = rec.branch_resolve(info)
            del taken
            if not correct:
                self.stall = self.config.mispredict_penalty
                end_group = True
        elif d.kind == "call":
            rec.note_call(info.pc + 8)
        elif d.name == "jmpl":
            target, correct = rec.indirect_resolve(info, C.is_return(d))
            del target
            if not correct:
                self.stall = self.config.mispredict_penalty
                end_group = True
        if info.is_branch and info.taken:
            end_group = True

        index = len(self.window)
        self.window.append(_Entry(d.cls, C.ST_WAIT, latency, dep1, dep2, info.pc))
        dest = C.dest_reg(d)
        if dest is not None:
            self.last_writer[dest] = index
        if C.sets_cc(d):
            self.last_writer[C.CC_REG] = index
        return end_group


class _ReplayedInfo:
    """Stand-in for StepInfo during recovery: only the fields the
    bookkeeping needs, reconstructed from recorded dynamic results."""

    __slots__ = ("pc", "is_branch", "taken", "target", "mem_addr")

    def __init__(self, pc: int):
        self.pc = pc
        self.is_branch = False
        self.taken = False
        self.target = 0
        self.mem_addr = None


class _Recorder:
    """Mediates between the slow cycle and the memo tree.

    In plain record mode it appends events from the tree root.  With a
    ``recovery`` prefix (already replayed by the fast engine), it
    verifies event kinds, suppresses re-execution, feeds recorded
    dynamic results back to the bookkeeping, walks the existing tree in
    step, and at the miss fork attaches a fresh branch and switches to
    live recording — the paper's recovery protocol, by hand.
    """

    def __init__(self, sim: FastSimOoo, record: bool, root: _Node | None,
                 recovery: list | None):
        self.sim = sim
        self.record = record
        self.recovery = recovery or []
        self.rix = 0
        self.root = root
        self.node = root
        self.on_tree = bool(self.recovery)  # walking existing records?

    # -- recovery helpers ----------------------------------------------------------

    def _recovering(self) -> bool:
        return self.rix < len(self.recovery)

    def _pop(self, kind: int):
        expected_kind, value = self.recovery[self.rix]
        if expected_kind != kind:
            raise RuntimeError(
                f"fastsim recovery desync: expected kind {expected_kind}, got {kind}"
            )
        self.rix += 1
        if self.on_tree and kind in CHECK_KINDS:
            nxt = self.node.succ.get(value)
            if nxt is None:
                # The miss fork: attach a fresh branch and go live.
                fresh = _Node()
                self.node.succ[value] = fresh
                self.node = fresh
                self.on_tree = False
                self.sim._bill(self.root, 48)
            else:
                self.node = nxt
        return value

    # -- event emissions --------------------------------------------------------------

    def stat(self, cycles: int, retired: int) -> None:
        if self._recovering():
            self._pop(EV_STAT)
            return
        self.sim.stats.cycles += cycles
        self.sim.stats.retired += retired
        self._emit((EV_STAT, cycles, retired))

    def annulled(self) -> None:
        # Annul steps have no architectural effect beyond sequencing,
        # which recovery re-derives (the key holds pre-cycle sequencing
        # state), so stepping is safe in both modes.
        if self._recovering():
            self._pop(EV_ANNUL)
            self.sim.func.step()
            return
        self.sim.func.step()
        self._emit((EV_ANNUL,))

    def exec_op(self, pc: int, d: S.Decoded):
        if self._recovering():
            self._pop(EV_EXEC)
            info = _ReplayedInfo(pc)
            self._resequence(info, d)
            return info
        info = self.sim.func.exec_decoded(d, pc)
        self._emit((EV_EXEC, pc, d))
        return info

    def _resequence(self, info: _ReplayedInfo, d: S.Decoded) -> None:
        """Advance functional sequencing during recovery without
        re-executing effects: outcomes come from recorded results."""
        func = self.sim.func
        pc, npc = func.pc, func.npc
        new_pc, new_npc = npc, npc + 4
        if d.kind == "call":
            info.is_branch = True
            info.taken = True
            info.target = (pc + d.disp) & 0xFFFFFFFF
            new_npc = info.target
        elif d.kind == "branch":
            info.is_branch = True
            taken, _correct = self._peek_value(EV_BPRED)
            info.taken = taken
            info.target = (pc + d.disp) & 0xFFFFFFFF
            if taken:
                new_npc = info.target
                if d.annul and d.cond == 0b1000:
                    func._annul_next = True
            elif d.annul:
                func._annul_next = True
        elif d.name == "jmpl":
            info.is_branch = True
            info.taken = True
            target, _correct = self._peek_value(EV_BIND)
            info.target = target
            new_npc = target
        elif d.kind in ("halt", "illegal"):
            func.halted = True
        func.pc, func.npc = new_pc, new_npc

    def _peek_value(self, kind: int):
        """An instruction's own dynamic result immediately follows its
        EXEC event in the recovery list."""
        expected_kind, value = self.recovery[self.rix]
        if expected_kind != kind:
            raise RuntimeError("fastsim recovery desync on result lookahead")
        return value

    def cache_access(self, info, is_store: bool) -> int:
        if self._recovering():
            return self._pop(EV_CACHE)
        if is_store:
            self.sim.stats.stores += 1
        else:
            self.sim.stats.loads += 1
        latency = self.sim.cache.access(info.mem_addr, self.sim.stats.cycles, is_store)
        self._check((EV_CACHE, (is_store,)), latency)
        return latency

    def branch_resolve(self, info):
        sim = self.sim
        if self._recovering():
            return self._pop(EV_BPRED)
        correct = sim.predictor.resolve_branch(info.pc, info.taken)
        sim.stats.branches += 1
        if not correct:
            sim.stats.mispredicts += 1
        value = (info.taken, correct)
        self._check((EV_BPRED, ()), value)
        return value

    def indirect_resolve(self, info, is_ret: bool):
        sim = self.sim
        if self._recovering():
            return self._pop(EV_BIND)
        correct = sim.predictor.resolve_indirect(info.pc, info.target, is_ret)
        sim.stats.branches += 1
        if not correct:
            sim.stats.mispredicts += 1
        value = (info.target, correct)
        self._check((EV_BIND, (is_ret,)), value)
        return value

    def note_call(self, return_addr: int) -> None:
        if self._recovering():
            self._pop(EV_BCALL)
            return
        self.sim.predictor.note_call(return_addr)
        self._emit((EV_BCALL, return_addr))

    # -- tree building ----------------------------------------------------------------

    def _emit(self, event: tuple) -> None:
        if not self.record:
            return
        self.node.events.append(event)
        self.sim.mstats.events_recorded += 1
        self.sim._bill(self.root, 16 + 8 * len(event))

    def _check(self, check: tuple, value) -> None:
        if not self.record:
            return
        self.node.check = check
        fresh = _Node()
        self.node.succ[value] = fresh
        self.node = fresh
        self.sim.mstats.events_recorded += 1
        self.sim._bill(self.root, 64)

    def finish(self, next_key: tuple) -> None:
        if self.record:
            self.node.next_key = next_key


def run_fastsim(
    program: Program,
    config: C.MachineConfig | None = None,
    memoize: bool = True,
    max_cycles: int = 10_000_000,
    memo_limit_bytes: int | None = None,
    memo_evict: str = "clear",
    flat_pack: bool = True,
    cache_dir=None,
    cache_load=None,
    cache_save=None,
    replay_backend: str = "python",
) -> FastSimOoo:
    sim = FastSimOoo(
        program,
        config,
        memoize=memoize,
        memo_limit_bytes=memo_limit_bytes,
        memo_evict=memo_evict,
        flat_pack=flat_pack,
        replay_backend=replay_backend,
    )
    warm = None
    if memoize and flat_pack:
        from ..facile.snapshot import warm_start

        warm = warm_start(
            sim,
            sim.snapshot_fingerprint,
            cache_dir=cache_dir,
            cache_load=cache_load,
            cache_save=cache_save,
        )
    sim.run(max_cycles)
    if warm is not None:
        warm.finish()
    return sim
