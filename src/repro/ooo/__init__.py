"""Out-of-order pipeline simulators: one model, three implementations."""

from .common import MachineConfig, OooStats
from .facile_ooo import FacileOooSim, compiled_ooo_sim, ooo_sim_source, run_facile_ooo
from .facile_inorder import FacileInOrderSim, compiled_inorder_sim, run_facile_inorder
from .fastsim import FastSimOoo, run_fastsim
from .inorder import InOrderSim, run_inorder
from .reference import ReferenceOooSim, run_reference

__all__ = [
    "FacileInOrderSim",
    "FacileOooSim",
    "FastSimOoo",
    "InOrderSim",
    "MachineConfig",
    "OooStats",
    "ReferenceOooSim",
    "compiled_inorder_sim",
    "compiled_ooo_sim",
    "ooo_sim_source",
    "run_facile_inorder",
    "run_facile_ooo",
    "run_fastsim",
    "run_inorder",
    "run_reference",
]
