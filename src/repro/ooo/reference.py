"""Conventional cycle-by-cycle out-of-order simulator (the baseline).

This plays the role SimpleScalar plays in the paper's Figures 11/12: a
widely used, conventional, **non-memoizing** detailed simulator of the
same micro-architecture.  It executes the model documented in
:mod:`repro.ooo.common` literally, one cycle at a time, with no
recording or replay machinery — every cycle pays full decode and
pipeline bookkeeping cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import sparclite as S
from ..isa.funcsim import FunctionalSim
from ..isa.program import Program
from . import common as C


@dataclass
class _Entry:
    cls: int
    state: int
    remaining: int
    dep1: int
    dep2: int
    pc: int


class ReferenceOooSim:
    """The conventional simulator.  Drive with :meth:`run`."""

    def __init__(self, program: Program, config: C.MachineConfig | None = None,
                 cache=None, predictor=None):
        self.config = config or C.MachineConfig()
        default_cache, default_pred = C.default_uarch(self.config)
        self.cache = cache if cache is not None else default_cache
        self.predictor = predictor if predictor is not None else default_pred
        self.func = FunctionalSim.for_program(program)
        self.window: list[_Entry] = []
        self.last_writer = [-1] * 33
        self.stall = 0
        self.fetch_halted = False
        self.stats = C.OooStats()

    @property
    def done(self) -> bool:
        return self.fetch_halted and not self.window

    # -- one cycle, phases exactly as specified in common.py ------------------

    def cycle(self) -> None:
        self.stats.cycles += 1
        self._retire()
        self._execute()
        self._issue()
        self._fetch()

    def run(self, max_cycles: int = 10_000_000) -> C.OooStats:
        while not self.done and self.stats.cycles < max_cycles:
            self.cycle()
        return self.stats

    # -- phases --------------------------------------------------------------

    def _retire(self) -> None:
        k = 0
        while (
            k < self.config.retire_width
            and k < len(self.window)
            and self.window[k].state == C.ST_DONE
        ):
            k += 1
        if k == 0:
            return
        del self.window[:k]
        self.stats.retired += k
        for entry in self.window:
            entry.dep1 = entry.dep1 - k if entry.dep1 >= k else -1
            entry.dep2 = entry.dep2 - k if entry.dep2 >= k else -1
        for reg in range(33):
            w = self.last_writer[reg]
            if w >= 0:
                self.last_writer[reg] = w - k if w >= k else -1

    def _execute(self) -> None:
        for entry in self.window:
            if entry.state == C.ST_EXEC:
                entry.remaining -= 1
                if entry.remaining <= 0:
                    entry.state = C.ST_DONE

    def _issue(self) -> None:
        issued = 0
        fu_used = {group: 0 for group in C.FU_CAPACITY}
        for entry in self.window:
            if issued >= self.config.issue_width:
                break
            if entry.state != C.ST_WAIT:
                continue
            if not self._dep_ready(entry.dep1) or not self._dep_ready(entry.dep2):
                continue
            group = C.FU_GROUP[entry.cls]
            if fu_used[group] >= C.FU_CAPACITY[group]:
                continue
            fu_used[group] += 1
            issued += 1
            entry.state = C.ST_EXEC
            # remaining was pre-loaded at dispatch (cache latency for
            # memory ops, fixed latency otherwise).

    def _dep_ready(self, dep: int) -> bool:
        return dep < 0 or self.window[dep].state == C.ST_DONE

    def _fetch(self) -> None:
        if self.stall > 0:
            self.stall -= 1
            return
        if self.fetch_halted:
            return
        fetched = 0
        while fetched < self.config.fetch_width and len(self.window) < self.config.window_size:
            if self.func.halted:
                self.fetch_halted = True
                break
            info = self.func.step()
            fetched += 1
            if info.annulled_slot:
                continue  # fetched but squashed: no window entry
            d = info.decoded
            end_group = self._dispatch(info, d)
            if d.kind in ("halt", "illegal"):
                self.fetch_halted = True
                break
            if end_group:
                break

    def _dispatch(self, info, d: S.Decoded) -> bool:
        """Create the window entry; returns True if the fetch group ends."""
        srcs = C.source_regs(d)
        producers = sorted(
            {self.last_writer[r] for r in srcs if self.last_writer[r] >= 0},
            reverse=True,
        )
        dep1 = producers[0] if len(producers) > 0 else -1
        dep2 = producers[1] if len(producers) > 1 else -1

        latency = C.fixed_latency(d.cls, self.config)
        end_group = False
        if d.cls in (S.CLS_LOAD, S.CLS_STORE):
            is_store = d.cls == S.CLS_STORE
            latency = self.cache.access(info.mem_addr, self.stats.cycles, is_store)
            if is_store:
                self.stats.stores += 1
            else:
                self.stats.loads += 1
        elif d.kind == "branch":
            self.stats.branches += 1
            correct = self.predictor.resolve_branch(info.pc, info.taken)
            if not correct:
                self.stats.mispredicts += 1
                self.stall = self.config.mispredict_penalty
                end_group = True
        elif d.kind == "call":
            self.predictor.note_call(info.pc + 8)
        elif d.name == "jmpl":
            self.stats.branches += 1
            correct = self.predictor.resolve_indirect(
                info.pc, info.target, C.is_return(d)
            )
            if not correct:
                self.stats.mispredicts += 1
                self.stall = self.config.mispredict_penalty
                end_group = True
        if info.is_branch and info.taken:
            end_group = True

        index = len(self.window)
        self.window.append(
            _Entry(cls=d.cls, state=C.ST_WAIT, remaining=latency, dep1=dep1, dep2=dep2, pc=info.pc)
        )
        dest = C.dest_reg(d)
        if dest is not None:
            self.last_writer[dest] = index
        if C.sets_cc(d):
            self.last_writer[C.CC_REG] = index
        return end_group


def run_reference(program: Program, config: C.MachineConfig | None = None,
                  max_cycles: int = 10_000_000) -> ReferenceOooSim:
    sim = ReferenceOooSim(program, config)
    sim.run(max_cycles)
    return sim
