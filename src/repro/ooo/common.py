"""The out-of-order micro-architecture model shared by all simulators.

Three implementations of **exactly this model** exist in the repo and are
co-simulated against each other in the tests:

* :mod:`repro.ooo.reference` — a conventional cycle-by-cycle Python
  simulator (the repo's *SimpleScalar-like* baseline, Figures 11/12);
* :mod:`repro.ooo.fastsim` — a hand-coded memoizing simulator (the
  repo's *FastSim* analogue, Figure 11);
* :mod:`repro.ooo.facile_ooo` — the same simulator written in Facile
  and compiled into a fast-forwarding simulator (Figure 12).

Model definition (functional-first, like SimpleScalar's sim-outorder and
the paper's own Facile simulator — footnote 2: "Instructions are first
interpreted for their functional behavior, then their pipeline timing is
simulated"):

State
  * a program-ordered instruction window of up to ``window_size``
    entries, each ``(cls, state, remaining, dep1, dep2)`` where deps are
    window-relative indices of the producing instructions (-1 = ready);
  * ``last_writer[33]``: window index of the most recent producer of
    each architectural register (index 32 is the condition-code
    register), -1 when the committed value is current;
  * functional fetch state ``(fpc, fnpc, annul)`` (SPARC delay slots);
  * ``stall`` (front-end bubble cycles left) and ``fetch_halted``.

Each cycle, **in this exact phase order**:

1. ``cycle += 1``.
2. **Retire** up to ``retire_width`` oldest entries in DONE state; then
   renormalize all dep and last-writer indices.
3. **Execute**: every EXEC entry's ``remaining`` decrements; on zero it
   becomes DONE.
4. **Issue**: scan the window oldest-first; a WAIT entry issues when its
   deps are DONE/retired, a function unit of its class group is free,
   and the global ``issue_width`` is not exhausted.  Issue sets
   ``remaining`` to the instruction latency.
5. **Fetch/dispatch**: if stalled, consume one stall cycle.  Otherwise
   fetch up to ``fetch_width`` instructions while the window has space:
   each is functionally executed (registers/memory/CC update
   immediately — values are always architecturally correct), then
   dispatched into the window.  Loads/stores access the data cache for
   their latency; conditional branches resolve against the direction
   predictor and indirect jumps against the BTB/RAS — a misprediction
   sets ``stall = mispredict_penalty``.  A fetch group ends at any taken
   control transfer, at a misprediction, or at ``halt`` (which stops
   fetch permanently).  Annulled delay slots are fetched but occupy no
   window entry.
6. Simulation halts when fetch has halted and the window is empty.

Dependences: each entry records at most the **two newest** producers
among its source registers (three-source stores drop the oldest).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import sparclite as S
from ..uarch.branch import FrontEndPredictor
from ..uarch.cache import CacheHierarchy, HierarchyConfig

# Window entry states.
ST_WAIT = 0
ST_EXEC = 1
ST_DONE = 2

CC_REG = 32  # pseudo-register index for the condition codes


@dataclass
class MachineConfig:
    """Configuration of the modeled R10000-like machine (paper §6.2:
    32-instruction window, branch prediction, non-blocking caches)."""

    window_size: int = 32
    fetch_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    mispredict_penalty: int = 3
    lat_ialu: int = 1
    lat_mul: int = 3
    lat_div: int = 12
    lat_branch: int = 1
    cache: HierarchyConfig = field(default_factory=HierarchyConfig)


# Function-unit groups: class -> (group name, per-cycle capacity).
FU_GROUP = {
    S.CLS_IALU: "alu",
    S.CLS_SETHI: "alu",
    S.CLS_HALT: "alu",
    S.CLS_MUL: "muldiv",
    S.CLS_DIV: "muldiv",
    S.CLS_LOAD: "mem",
    S.CLS_STORE: "mem",
    S.CLS_BRANCH: "br",
    S.CLS_CALL: "br",
    S.CLS_JMPL: "br",
}

FU_CAPACITY = {"alu": 4, "muldiv": 1, "mem": 2, "br": 1}


def fixed_latency(cls: int, config: MachineConfig) -> int:
    """Latency for non-memory classes (memory comes from the cache)."""
    if cls == S.CLS_MUL:
        return config.lat_mul
    if cls == S.CLS_DIV:
        return config.lat_div
    if cls in (S.CLS_BRANCH, S.CLS_CALL, S.CLS_JMPL):
        return config.lat_branch
    return config.lat_ialu


def source_regs(d: S.Decoded) -> list[int]:
    """Architectural source registers of a decoded instruction
    (CC_REG for the condition codes; %g0 is never a dependence)."""
    srcs: list[int] = []

    def add(reg: int) -> None:
        if reg != 0 and reg not in srcs:
            srcs.append(reg)

    if d.kind in ("arith", "mem", "halt"):
        if d.kind != "halt":
            add(d.rs1)
            if not d.use_imm:
                add(d.rs2)
        if d.kind == "mem" and S.MEM_BY_NAME[d.name].is_store:
            add(d.rd)
    elif d.kind == "branch":
        srcs.append(CC_REG)
    # call, sethi: no register sources.
    if d.name == "jmpl":
        pass  # rs1/rs2 already added via "arith"
    return srcs


def dest_reg(d: S.Decoded) -> int | None:
    """Architectural destination register, or None."""
    if d.kind == "arith" and d.name != "halt":
        return d.rd if d.rd != 0 else None
    if d.kind == "mem" and not S.MEM_BY_NAME[d.name].is_store:
        return d.rd if d.rd != 0 else None
    if d.kind == "sethi":
        return d.rd if d.rd != 0 else None
    if d.kind == "call":
        return 15
    return None


def sets_cc(d: S.Decoded) -> bool:
    return d.kind == "arith" and d.name in S.ARITH_BY_NAME and S.ARITH_BY_NAME[d.name].sets_cc


def is_return(d: S.Decoded) -> bool:
    """``ret`` == ``jmpl %o7 + 8, %g0``."""
    return d.name == "jmpl" and d.use_imm and d.rs1 == 15 and d.imm == 8 and d.rd == 0


@dataclass
class OooStats:
    cycles: int = 0
    retired: int = 0
    branches: int = 0
    mispredicts: int = 0
    loads: int = 0
    stores: int = 0

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0


def default_uarch(config: MachineConfig):
    """Fresh (cache, predictor) pair for one simulation run."""
    return CacheHierarchy(config.cache), FrontEndPredictor()
