"""In-order scalar pipeline simulator (reference implementation).

The paper's §6.2 mentions a third Facile artifact besides the
functional and out-of-order simulators: "an in-order pipeline with
reservation tables required 965 lines of Facile".  This module defines
that machine model precisely; :mod:`repro.ooo.facile_inorder` is the
same model written in Facile, and the tests co-simulate the two.

Model: single-issue, in-order, with register/function-unit reservation
tables (classic scoreboarding):

* ``ready[r]`` — the future cycle at which register ``r``'s value (and
  index 32, the condition codes) becomes available;
* ``fu_free[g]`` — the cycle at which function-unit group ``g`` can
  accept another instruction (units are non-pipelined for muldiv,
  pipelined otherwise);
* an instruction issues at
  ``max(cycle + 1, ready[sources...], fu_free[group])``, completes
  ``latency`` cycles later, and reserves its destination until then;
* loads/stores get their latency from the external cache simulator at
  issue time; conditional branches resolve against the external
  predictor — a mispredict adds ``mispredict_penalty`` to the next
  instruction's earliest issue;
* annulled delay slots consume one fetch cycle but no resources.
"""

from __future__ import annotations

from ..isa import sparclite as S
from ..isa.funcsim import FunctionalSim
from ..isa.program import Program
from . import common as C

#: Largest number of future cycles any reservation can extend; used to
#: bound the relative reservation tables so memo keys stay compact.
HORIZON = 64


class InOrderSim:
    """The in-order reference simulator."""

    def __init__(self, program: Program, config: C.MachineConfig | None = None,
                 cache=None, predictor=None):
        self.config = config or C.MachineConfig()
        default_cache, default_pred = C.default_uarch(self.config)
        self.cache = cache if cache is not None else default_cache
        self.predictor = predictor if predictor is not None else default_pred
        self.func = FunctionalSim.for_program(program)
        self.cycle = 0
        # Relative reservation tables: cycles-until-ready (0 = ready now).
        self.ready = [0] * 33
        self.fu_free = {group: 0 for group in C.FU_CAPACITY}
        self.stats = C.OooStats()

    def _advance(self, dt: int) -> None:
        """Move time forward `dt` cycles, aging the reservation tables."""
        if dt <= 0:
            return
        self.cycle += dt
        self.stats.cycles += dt
        self.ready = [max(0, r - dt) for r in self.ready]
        for group in self.fu_free:
            self.fu_free[group] = max(0, self.fu_free[group] - dt)

    def step(self) -> None:
        """Fetch, issue, and account one instruction."""
        info = self.func.step()
        if info.annulled_slot:
            self._advance(1)
            return
        d = info.decoded
        self.stats.retired += 1

        srcs = C.source_regs(d)
        group = C.FU_GROUP[d.cls]
        wait = 1
        for r in srcs:
            wait = max(wait, self.ready[r])
        wait = max(wait, self.fu_free[group])

        latency = C.fixed_latency(d.cls, self.config)
        penalty = 0
        if d.cls in (S.CLS_LOAD, S.CLS_STORE):
            is_store = d.cls == S.CLS_STORE
            latency = self.cache.access(info.mem_addr, self.cycle + wait, is_store)
            if is_store:
                self.stats.stores += 1
            else:
                self.stats.loads += 1
        elif d.kind == "branch":
            self.stats.branches += 1
            if not self.predictor.resolve_branch(info.pc, info.taken):
                self.stats.mispredicts += 1
                penalty = self.config.mispredict_penalty
        elif d.kind == "call":
            self.predictor.note_call(info.pc + 8)
        elif d.name == "jmpl":
            self.stats.branches += 1
            if not self.predictor.resolve_indirect(info.pc, info.target, C.is_return(d)):
                self.stats.mispredicts += 1
                penalty = self.config.mispredict_penalty

        # Advance to the issue cycle, then reserve results/units.
        self._advance(wait)
        latency = min(latency, HORIZON)
        dest = C.dest_reg(d)
        if dest is not None:
            self.ready[dest] = latency
        if C.sets_cc(d):
            self.ready[C.CC_REG] = latency
        if group == "muldiv":
            self.fu_free[group] = latency  # non-pipelined
        # Mispredict: stall the front end (reservations keep aging).
        if penalty:
            self._advance(penalty)

    def run(self, max_instructions: int = 50_000_000) -> C.OooStats:
        while not self.func.halted and self.stats.retired < max_instructions:
            self.step()
        return self.stats


def run_inorder(program: Program, config: C.MachineConfig | None = None) -> InOrderSim:
    sim = InOrderSim(program, config)
    sim.run()
    return sim
