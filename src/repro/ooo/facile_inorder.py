"""The in-order pipeline simulator written in Facile.

This is the reproduction's analogue of the paper's 965-line "in-order
pipeline with reservation tables" (§6.2): the model defined in
:mod:`repro.ooo.inorder`, expressed as a Facile step function (one
instruction per step) and compiled into a fast-forwarding simulator.

The run-time static key is ``(pc, npc, annul, ready-table,
fu-reservations)``: the reservation tables are *relative* (cycles until
free), so pipeline states recur and the action cache gets the same
reuse the out-of-order key enjoys.  Cache latencies and branch
resolutions are dynamic result tests, exactly as in the OOO simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..facile import CompilationResult, FastForwardEngine, PlainEngine, compile_source
from ..isa import sparclite as S
from ..isa.facile_src import isa_declarations
from ..isa.program import Program
from . import common as C
from .inorder import HORIZON


def inorder_main_source(config: C.MachineConfig | None = None) -> str:
    cfg = config or C.MachineConfig()
    return f"""
extern xcache(3);
extern xbpred(2);
extern xbind(3);
extern xbcall(1);

val init;

fun age_fu(value, dt) {{
  val aged = value - dt;
  if (aged < 0) aged = 0;
  return aged;
}}

fun main(pc, npc, annul, rdy, fu_alu, fu_md, fu_mem, fu_br) {{
  PC = 0; NPC2 = 0; ANNUL2 = 0;
  IS_BR = 0; BR_TAKEN = 0;
  IS_MEM = 0; IS_STORE = 0;
  IS_HALT = 0; IS_RET = 0;
  CLS_G = 0; DEST = 33; SRC1 = 33; SRC2 = 33; SRC3 = 33; SETSCC_G = 0;

  if (annul) {{
    // Annulled delay slot: one fetch cycle, no reservations touched
    // beyond aging.
    stat_cycle(1);
    val j = 0;
    while (j < 33) {{
      rdy[j] = max(0, rdy[j] - 1);
      j = j + 1;
    }}
    init = (npc, npc + 4, 0, rdy,
            age_fu(fu_alu, 1), age_fu(fu_md, 1), age_fu(fu_mem, 1), age_fu(fu_br, 1));
  }} else {{
    PC = pc;
    NPC2 = npc + 4;
    PC?exec();
    stat_retire(1);

    // Issue cycle: wait for sources, then for the function unit.
    val wait = 1;
    if (SRC1 != 33) wait = max(wait, rdy[SRC1]);
    if (SRC2 != 33) wait = max(wait, rdy[SRC2]);
    if (SRC3 != 33) wait = max(wait, rdy[SRC3]);
    val grp = 0;  // 0=alu 1=muldiv 2=mem 3=br
    switch (CLS_G) {{
      case {S.CLS_MUL}, {S.CLS_DIV}: grp = 1;
      case {S.CLS_LOAD}, {S.CLS_STORE}: grp = 2;
      case {S.CLS_BRANCH}, {S.CLS_CALL}, {S.CLS_JMPL}: grp = 3;
    }}
    switch (grp) {{
      case 1: wait = max(wait, fu_md);
      case 2: wait = max(wait, fu_mem);
      case 3: wait = max(wait, fu_br);
      default: wait = max(wait, fu_alu);
    }}

    // Latency and front-end events.
    val lat = {cfg.lat_ialu};
    switch (CLS_G) {{
      case {S.CLS_MUL}: lat = {cfg.lat_mul};
      case {S.CLS_DIV}: lat = {cfg.lat_div};
    }}
    val pen = 0;
    if (IS_MEM) {{
      lat = xcache(MEM_ADDR, IS_STORE, wait)?verify;
      if (IS_STORE) stat_count(1, 1); else stat_count(0, 1);
    }}
    if (CLS_G == {S.CLS_BRANCH}) {{
      stat_count(2, 1);
      val corr = xbpred(pc, BR_TAKEN)?verify;
      if (!corr) {{ stat_count(3, 1); pen = {cfg.mispredict_penalty}; }}
    }}
    if (CLS_G == {S.CLS_CALL}) {{
      xbcall(pc + 8);
    }}
    if (CLS_G == {S.CLS_JMPL}) {{
      stat_count(2, 1);
      val corr2 = xbind(pc, NPC2, IS_RET)?verify;
      if (!corr2) {{ stat_count(3, 1); pen = {cfg.mispredict_penalty}; }}
    }}
    if (lat > {HORIZON}) lat = {HORIZON};

    // Advance to the issue cycle: age every reservation by `wait`.
    stat_cycle(wait);
    val j = 0;
    while (j < 33) {{
      rdy[j] = max(0, rdy[j] - wait);
      j = j + 1;
    }}
    val a2 = age_fu(fu_alu, wait);
    val m2 = age_fu(fu_md, wait);
    val e2 = age_fu(fu_mem, wait);
    val b2 = age_fu(fu_br, wait);

    // Reserve the destination and (for muldiv) the unit.
    if (DEST != 33) rdy[DEST] = lat;
    if (SETSCC_G) rdy[32] = lat;
    if (grp == 1) m2 = lat;

    // A mispredict stalls fetch while reservations keep aging.
    if (pen > 0) {{
      stat_cycle(pen);
      j = 0;
      while (j < 33) {{
        rdy[j] = max(0, rdy[j] - pen);
        j = j + 1;
      }}
      a2 = age_fu(a2, pen);
      m2 = age_fu(m2, pen);
      e2 = age_fu(e2, pen);
      b2 = age_fu(b2, pen);
    }}

    if (IS_HALT) halt();
    init = (npc, NPC2, ANNUL2, rdy, a2, m2, e2, b2);
  }}
}}
"""


def inorder_sim_source(config: C.MachineConfig | None = None) -> str:
    return isa_declarations(halt_builtin=False) + inorder_main_source(config)


@lru_cache(maxsize=4)
def _compiled(config_key: tuple) -> CompilationResult:
    config = C.MachineConfig(*config_key)
    return compile_source(
        inorder_sim_source(config), name="sparclite-inorder", flush_policy="live"
    )


def compiled_inorder_sim(config: C.MachineConfig | None = None) -> CompilationResult:
    cfg = config or C.MachineConfig()
    key = (
        cfg.window_size,
        cfg.fetch_width,
        cfg.issue_width,
        cfg.retire_width,
        cfg.mispredict_penalty,
        cfg.lat_ialu,
        cfg.lat_mul,
        cfg.lat_div,
        cfg.lat_branch,
    )
    return _compiled(key)


@dataclass
class InOrderRun:
    ctx: object
    engine: object
    run_stats: object
    stats: C.OooStats
    halted: bool


class FacileInOrderSim:
    def __init__(self, program: Program, config: C.MachineConfig | None = None,
                 memoized: bool = True, trace_jit: bool = True,
                 trace_threshold: int = 64,
                 cache_limit_bytes: int | None = None,
                 cache_evict: str = "clear",
                 flat_pack: bool = True,
                 replay_backend: str = "python"):
        self.config = config or C.MachineConfig()
        self.program = program
        self.compiled = compiled_inorder_sim(self.config).simulator
        self.dcache, self.predictor = C.default_uarch(self.config)
        self.ctx = self.compiled.make_context(self._externs())
        # The models behind each extern, so the C replay backend can
        # lower recognised ones to in-kernel native dispatches.
        self.ctx.extern_models = {
            "xcache": self.dcache,
            "xbpred": self.predictor,
            "xbind": self.predictor,
            "xbcall": self.predictor,
        }
        program.load_into(self.ctx.mem)
        self.ctx.read_global("R")[14] = program.stack_top
        ready = tuple([0] * 33)
        self.ctx.write_global(
            "init", (program.entry, program.entry + 4, 0, ready, 0, 0, 0, 0)
        )
        if memoized:
            self.engine = FastForwardEngine(
                self.compiled, self.ctx,
                cache_limit_bytes=cache_limit_bytes,
                cache_evict=cache_evict,
                trace_jit=trace_jit, trace_threshold=trace_threshold,
                flat_pack=flat_pack, replay_backend=replay_backend,
            )
        else:
            self.engine = PlainEngine(self.compiled, self.ctx)

    def _externs(self) -> dict:
        def xcache(addr, is_store, wait):
            # The reference model probes the cache at the issue cycle.
            return self.dcache.access(addr, self.ctx.cycles + wait, bool(is_store))

        def xbpred(pc, taken):
            return 1 if self.predictor.resolve_branch(pc, bool(taken)) else 0

        def xbind(pc, target, is_ret):
            return 1 if self.predictor.resolve_indirect(pc, target, bool(is_ret)) else 0

        def xbcall(return_addr):
            self.predictor.note_call(return_addr)
            return 0

        return {"xcache": xcache, "xbpred": xbpred, "xbind": xbind, "xbcall": xbcall}

    def run(self, max_steps: int = 50_000_000) -> InOrderRun:
        run_stats = self.engine.run(max_steps=max_steps)
        ctx = self.ctx
        stats = C.OooStats(
            cycles=ctx.cycles,
            retired=ctx.retired_total,
            branches=ctx.counters.get("2", 0),
            mispredicts=ctx.counters.get("3", 0),
            loads=ctx.counters.get("0", 0),
            stores=ctx.counters.get("1", 0),
        )
        return InOrderRun(ctx, self.engine, run_stats, stats, ctx.halted)


def run_facile_inorder(
    program: Program, config: C.MachineConfig | None = None, memoized: bool = True,
    trace_jit: bool = True, trace_threshold: int = 64,
    cache_limit_bytes: int | None = None, cache_evict: str = "clear",
    flat_pack: bool = True,
    cache_dir=None, cache_load=None, cache_save=None,
    replay_backend: str = "python",
    profile: bool = False,
) -> InOrderRun:
    sim = FacileInOrderSim(
        program, config, memoized=memoized,
        trace_jit=trace_jit, trace_threshold=trace_threshold,
        cache_limit_bytes=cache_limit_bytes, cache_evict=cache_evict,
        flat_pack=flat_pack, replay_backend=replay_backend,
    )
    if profile and hasattr(sim.engine, "profile"):
        sim.engine.profile(True)
    warm = None
    if memoized:
        from ..facile.snapshot import engine_fingerprint, warm_start

        warm = warm_start(
            sim.engine, engine_fingerprint(sim.compiled, program),
            cache_dir=cache_dir, cache_load=cache_load, cache_save=cache_save,
        )
    result = sim.run()
    if warm is not None:
        warm.finish()
    return result
