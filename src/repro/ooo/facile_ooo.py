"""The out-of-order simulator written in Facile (the paper's §6.2 artifact).

This is the reproduction's analogue of the paper's 1,959-line Facile
out-of-order simulator: the same micro-architecture model as
:mod:`repro.ooo.reference` (32-entry window, register renaming via
last-writer tracking, branch prediction, speculative fetch past
predicted branches, non-blocking data caches) expressed as a Facile
step function and compiled by this repo's Facile compiler into a
fast-forwarding simulator.

Division of labour, exactly as in the paper:

* the **pipeline model** (window bookkeeping, retire/issue/fetch) is
  Facile code — run-time static, skipped wholesale during replay;
* **functional instruction semantics** come from the shared SPARC-lite
  ``sem`` declarations — dynamic actions replayed by the fast engine;
* the **cache simulator and branch predictor are externs** ("the branch
  predictor and cache simulator are not memoized", §6.2); their results
  enter the pipeline through ``?verify`` dynamic result tests, so a
  replay remains valid only while the cache latency and prediction
  outcomes repeat — the paper's §2.2 example behaviour.

The step function simulates one processor cycle; its run-time static
key is the compressed pipeline state: the instruction queue (parallel
arrays), last-writer table, fetch sequencing state, stall counter, and
fetch-halt flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..facile import CompilationResult, FastForwardEngine, PlainEngine, compile_source
from ..isa.facile_src import isa_declarations
from ..isa.program import Program
from . import common as C
from ..isa import sparclite as S


def ooo_main_source(config: C.MachineConfig | None = None) -> str:
    """Generate the Facile `main` for the OOO model with the given
    machine configuration baked in as constants."""
    cfg = config or C.MachineConfig()
    return f"""
extern xcache(2);
extern xbpred(2);
extern xbind(3);
extern xbcall(1);

val init;

fun main(iq_cls, iq_state, iq_rem, iq_dep1, iq_dep2, iq_pc,
         lw, fpc, fnpc, fannul, stall, fhalt) {{
  stat_cycle(1);

  // Top-level defaults make every tracking global definitely assigned
  // on all paths, so binding-time analysis can keep them run-time
  // static (they are re-assigned before each ?exec below).
  PC = 0; NPC2 = 0; ANNUL2 = 0;
  IS_BR = 0; BR_TAKEN = 0;
  IS_MEM = 0; IS_STORE = 0;
  IS_HALT = 0; IS_RET = 0;
  CLS_G = 0; DEST = 33; SRC1 = 33; SRC2 = 33; SRC3 = 33; SETSCC_G = 0;

  // ---- phase 2: retire (up to retire_width oldest DONE entries) ----
  val n = iq_cls?size();
  val k = 0;
  while (k < {cfg.retire_width} && k < n && iq_state[k] == 2) {{
    k = k + 1;
  }}
  if (k > 0) {{
    stat_retire(k);
    val j = 0;
    while (j + k < n) {{
      iq_cls[j] = iq_cls[j + k];
      iq_state[j] = iq_state[j + k];
      iq_rem[j] = iq_rem[j + k];
      iq_dep1[j] = iq_dep1[j + k];
      iq_dep2[j] = iq_dep2[j + k];
      iq_pc[j] = iq_pc[j + k];
      j = j + 1;
    }}
    j = 0;
    while (j < k) {{
      iq_cls?pop_back(); iq_state?pop_back(); iq_rem?pop_back();
      iq_dep1?pop_back(); iq_dep2?pop_back(); iq_pc?pop_back();
      j = j + 1;
    }}
    n = n - k;
    j = 0;
    while (j < n) {{
      if (iq_dep1[j] >= k) iq_dep1[j] = iq_dep1[j] - k; else iq_dep1[j] = 0 - 1;
      if (iq_dep2[j] >= k) iq_dep2[j] = iq_dep2[j] - k; else iq_dep2[j] = 0 - 1;
      j = j + 1;
    }}
    j = 0;
    while (j < 33) {{
      if (lw[j] >= k) lw[j] = lw[j] - k; else lw[j] = 0 - 1;
      j = j + 1;
    }}
  }}

  // ---- phase 3: execute (latency countdown) ----
  val j2 = 0;
  while (j2 < n) {{
    if (iq_state[j2] == 1) {{
      iq_rem[j2] = iq_rem[j2] - 1;
      if (iq_rem[j2] <= 0) iq_state[j2] = 2;
    }}
    j2 = j2 + 1;
  }}

  // ---- phase 4: issue (oldest first, FU groups, global width) ----
  val issued = 0;
  val fu_alu = 0;
  val fu_md = 0;
  val fu_mem = 0;
  val fu_br = 0;
  val j3 = 0;
  while (j3 < n) {{
    if (issued < {cfg.issue_width} && iq_state[j3] == 0) {{
      val ok = 1;
      val d1 = iq_dep1[j3];
      if (d1 >= 0) {{ if (iq_state[d1] != 2) ok = 0; }}
      val d2 = iq_dep2[j3];
      if (d2 >= 0) {{ if (iq_state[d2] != 2) ok = 0; }}
      if (ok) {{
        val cls = iq_cls[j3];
        val go = 0;
        switch (cls) {{
          case {S.CLS_MUL}, {S.CLS_DIV}:
            if (fu_md < {C.FU_CAPACITY["muldiv"]}) {{ fu_md = fu_md + 1; go = 1; }}
          case {S.CLS_LOAD}, {S.CLS_STORE}:
            if (fu_mem < {C.FU_CAPACITY["mem"]}) {{ fu_mem = fu_mem + 1; go = 1; }}
          case {S.CLS_BRANCH}, {S.CLS_CALL}, {S.CLS_JMPL}:
            if (fu_br < {C.FU_CAPACITY["br"]}) {{ fu_br = fu_br + 1; go = 1; }}
          default:
            if (fu_alu < {C.FU_CAPACITY["alu"]}) {{ fu_alu = fu_alu + 1; go = 1; }}
        }}
        if (go) {{
          iq_state[j3] = 1;
          issued = issued + 1;
        }}
      }}
    }}
    j3 = j3 + 1;
  }}

  // ---- phase 5: fetch + dispatch (functional-first) ----
  val fpc2 = fpc;
  val fnpc2 = fnpc;
  val fannul2 = fannul;
  val stall2 = stall;
  val fhalt2 = fhalt;
  if (stall2 > 0) {{
    stall2 = stall2 - 1;
  }} else {{
    if (!fhalt2) {{
      val fetched = 0;
      while (fetched < {cfg.fetch_width} && iq_cls?size() < {cfg.window_size}) {{
        fetched = fetched + 1;
        if (fannul2) {{
          // Annulled delay slot: fetched but squashed; sequencing only.
          fannul2 = 0;
          fpc2 = fnpc2;
          fnpc2 = fnpc2 + 4;
          continue;
        }}
        // Functional execution of the instruction at fpc2 (paper
        // footnote 2: functional behaviour first, then timing).
        PC = fpc2;
        NPC2 = fnpc2 + 4;
        ANNUL2 = 0;
        IS_BR = 0; BR_TAKEN = 0;
        IS_MEM = 0; IS_STORE = 0;
        IS_HALT = 0; IS_RET = 0;
        CLS_G = 0; DEST = 33; SRC1 = 33; SRC2 = 33; SRC3 = 33; SETSCC_G = 0;
        PC?exec();

        // Rename: producers of this instruction's sources (two newest).
        val dep1n = 0 - 1;
        val dep2n = 0 - 1;
        if (SRC1 != 33) {{
          val p1 = lw[SRC1];
          if (p1 > dep1n) dep1n = p1;
        }}
        if (SRC2 != 33) {{
          val p2 = lw[SRC2];
          if (p2 > dep1n) {{ dep2n = dep1n; dep1n = p2; }}
          else {{ if (p2 != dep1n && p2 > dep2n) dep2n = p2; }}
        }}
        if (SRC3 != 33) {{
          val p3 = lw[SRC3];
          if (p3 > dep1n) {{ dep2n = dep1n; dep1n = p3; }}
          else {{ if (p3 != dep1n && p3 > dep2n) dep2n = p3; }}
        }}

        // Latency and front-end events.
        val lat = {cfg.lat_ialu};
        switch (CLS_G) {{
          case {S.CLS_MUL}: lat = {cfg.lat_mul};
          case {S.CLS_DIV}: lat = {cfg.lat_div};
        }}
        val endgrp = 0;
        if (IS_MEM) {{
          lat = xcache(MEM_ADDR, IS_STORE)?verify;
          if (IS_STORE) stat_count(1, 1); else stat_count(0, 1);
        }}
        if (CLS_G == {S.CLS_BRANCH}) {{
          stat_count(2, 1);
          val corr = xbpred(fpc2, BR_TAKEN)?verify;
          if (!corr) {{
            stat_count(3, 1);
            stall2 = {cfg.mispredict_penalty};
            endgrp = 1;
          }}
        }}
        if (CLS_G == {S.CLS_CALL}) {{
          xbcall(fpc2 + 8);
        }}
        if (CLS_G == {S.CLS_JMPL}) {{
          stat_count(2, 1);
          val corr2 = xbind(fpc2, NPC2, IS_RET)?verify;
          if (!corr2) {{
            stat_count(3, 1);
            stall2 = {cfg.mispredict_penalty};
            endgrp = 1;
          }}
        }}
        if (IS_BR && BR_TAKEN) endgrp = 1;

        // Dispatch into the window.
        iq_cls?push_back(CLS_G);
        iq_state?push_back(0);
        iq_rem?push_back(lat);
        iq_dep1?push_back(dep1n);
        iq_dep2?push_back(dep2n);
        iq_pc?push_back(fpc2);
        val idx = iq_cls?size() - 1;
        if (DEST != 33) lw[DEST] = idx;
        if (SETSCC_G) lw[32] = idx;

        // Advance functional sequencing (delay-slot pair).
        fpc2 = fnpc2;
        fnpc2 = NPC2;
        fannul2 = ANNUL2;

        if (IS_HALT) {{
          fhalt2 = 1;
          break;
        }}
        if (endgrp) break;
      }}
    }}
  }}

  if (fhalt2 && iq_cls?size() == 0) halt();
  init = (iq_cls, iq_state, iq_rem, iq_dep1, iq_dep2, iq_pc,
          lw, fpc2, fnpc2, fannul2, stall2, fhalt2);
}}
"""


def ooo_sim_source(config: C.MachineConfig | None = None) -> str:
    """Full Facile source: ISA declarations + the OOO step function."""
    return isa_declarations(halt_builtin=False) + ooo_main_source(config)


@lru_cache(maxsize=8)
def _compiled_for(config_key: tuple) -> CompilationResult:
    config = C.MachineConfig(*config_key[:9])
    flush_policy = config_key[9]
    coalesce = config_key[10]
    return compile_source(
        ooo_sim_source(config),
        name="sparclite-ooo",
        flush_policy=flush_policy,
        coalesce=coalesce,
    )


def compiled_ooo_sim(
    config: C.MachineConfig | None = None,
    flush_policy: str = "live",
    coalesce: bool = True,
) -> CompilationResult:
    """Compile (and cache) the Facile OOO simulator for a configuration.

    The default enables the flush-liveness optimization (§6.3 item 3):
    the tracking globals are dead across step boundaries, so flushing
    them would only bloat the action cache.  ``flush_policy="all"`` is
    the unoptimized compiler, used by the ablation benchmark.
    """
    cfg = config or C.MachineConfig()
    key = (
        cfg.window_size,
        cfg.fetch_width,
        cfg.issue_width,
        cfg.retire_width,
        cfg.mispredict_penalty,
        cfg.lat_ialu,
        cfg.lat_mul,
        cfg.lat_div,
        cfg.lat_branch,
        flush_policy,
        coalesce,
    )
    return _compiled_for(key)


@dataclass
class FacileOooRun:
    ctx: object
    engine: object
    run_stats: object
    stats: C.OooStats
    retired_fast: int
    halted: bool

    @property
    def fast_fraction(self) -> float:
        return self.retired_fast / self.stats.retired if self.stats.retired else 0.0


class FacileOooSim:
    """Driver wiring the compiled Facile OOO simulator to a program and
    the external cache/predictor substrates."""

    def __init__(
        self,
        program: Program,
        config: C.MachineConfig | None = None,
        memoized: bool = True,
        cache_limit_bytes: int | None = None,
        cache_evict: str = "clear",
        flush_policy: str = "live",
        coalesce: bool = True,
        index_links: bool = True,
        trace_jit: bool = True,
        trace_threshold: int = 64,
        flat_pack: bool = True,
        replay_backend: str = "python",
    ):
        self.config = config or C.MachineConfig()
        self.program = program
        self.memoized = memoized
        result = compiled_ooo_sim(self.config, flush_policy=flush_policy, coalesce=coalesce)
        self.compiled = result.simulator
        self.dcache, self.predictor = C.default_uarch(self.config)
        self.ctx = self.compiled.make_context(self._externs())
        # The models behind each extern, so the C replay backend can
        # lower recognised ones to in-kernel native dispatches.
        self.ctx.extern_models = {
            "xcache": self.dcache,
            "xbpred": self.predictor,
            "xbind": self.predictor,
            "xbcall": self.predictor,
        }
        program.load_into(self.ctx.mem)
        self.ctx.read_global("R")[14] = program.stack_top
        self.ctx.write_global("init", self._initial_key())
        if memoized:
            self.engine = FastForwardEngine(
                self.compiled,
                self.ctx,
                cache_limit_bytes=cache_limit_bytes,
                cache_evict=cache_evict,
                index_links=index_links,
                trace_jit=trace_jit,
                trace_threshold=trace_threshold,
                flat_pack=flat_pack,
                replay_backend=replay_backend,
            )
        else:
            self.engine = PlainEngine(self.compiled, self.ctx)

    def _initial_key(self) -> tuple:
        lw = tuple([-1] * 33)
        return ((), (), (), (), (), (), lw,
                self.program.entry, self.program.entry + 4, 0, 0, 0)

    def _externs(self) -> dict:
        ctx_holder = {}

        def xcache(addr, is_store):
            return self.dcache.access(addr, self.ctx.cycles, bool(is_store))

        def xbpred(pc, taken):
            return 1 if self.predictor.resolve_branch(pc, bool(taken)) else 0

        def xbind(pc, target, is_ret):
            return 1 if self.predictor.resolve_indirect(pc, target, bool(is_ret)) else 0

        def xbcall(return_addr):
            self.predictor.note_call(return_addr)
            return 0

        del ctx_holder
        return {"xcache": xcache, "xbpred": xbpred, "xbind": xbind, "xbcall": xbcall}

    def run(self, max_steps: int = 10_000_000) -> FacileOooRun:
        run_stats = self.engine.run(max_steps=max_steps)
        ctx = self.ctx
        stats = C.OooStats(
            cycles=ctx.cycles,
            retired=ctx.retired_total,
            branches=ctx.counters.get("2", 0),
            mispredicts=ctx.counters.get("3", 0),
            loads=ctx.counters.get("0", 0),
            stores=ctx.counters.get("1", 0),
        )
        return FacileOooRun(
            ctx=ctx,
            engine=self.engine,
            run_stats=run_stats,
            stats=stats,
            retired_fast=ctx.retired_fast,
            halted=ctx.halted,
        )


def run_facile_ooo(
    program: Program,
    config: C.MachineConfig | None = None,
    memoized: bool = True,
    max_steps: int = 10_000_000,
    cache_limit_bytes: int | None = None,
    cache_evict: str = "clear",
    flush_policy: str = "live",
    coalesce: bool = True,
    index_links: bool = True,
    trace_jit: bool = True,
    trace_threshold: int = 64,
    flat_pack: bool = True,
    cache_dir=None,
    cache_load=None,
    cache_save=None,
    replay_backend: str = "python",
    profile: bool = False,
) -> FacileOooRun:
    sim = FacileOooSim(
        program,
        config,
        memoized=memoized,
        cache_limit_bytes=cache_limit_bytes,
        cache_evict=cache_evict,
        flush_policy=flush_policy,
        coalesce=coalesce,
        index_links=index_links,
        trace_jit=trace_jit,
        trace_threshold=trace_threshold,
        flat_pack=flat_pack,
        replay_backend=replay_backend,
    )
    if profile and hasattr(sim.engine, "profile"):
        sim.engine.profile(True)
    warm = None
    if memoized:
        from ..facile.snapshot import engine_fingerprint, warm_start

        warm = warm_start(
            sim.engine, engine_fingerprint(sim.compiled, program),
            cache_dir=cache_dir, cache_load=cache_load, cache_save=cache_save,
        )
    result = sim.run(max_steps=max_steps)
    if warm is not None:
        warm.finish()
    return result
