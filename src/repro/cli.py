"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``compile FILE.fac``
    Compile a Facile simulator description; print the binding-time
    division summary and optionally the generated engines.

``asm FILE.s``
    Assemble SPARC-lite source; print a hex listing and symbols.

``run FILE.s``
    Assemble and simulate a SPARC-lite program on the golden model, the
    Facile functional simulator, or one of the pipeline models.

``minic FILE.c``
    Compile a minic program (optionally print the generated assembly)
    and run it, showing the ``out()`` buffer.

``workloads``
    List or run the SPEC95-analogue workloads.

``check FILE.fac ...``
    Run the static-analysis passes (batched diagnostics, BTA-soundness
    audit, pattern lints, cache-blowup prediction) over Facile sources
    and/or the built-in simulators.  Exits 0 when clean, 1 on
    diagnostics (warnings count with ``--werror``), 2 on unreadable
    input.

``serve``
    Run the simulation service: a local socket front end over a
    sharded worker pool.  Jobs for the same (program × config) pair
    land on the same worker and reuse its warm snapshot; clients
    stream per-job progress events.  ``python -m repro.serve.client``
    is the matching client.

``fleet``
    Run the (workload × simulator) benchmark grid in parallel through
    the same worker pool, verify each cell's cycles against a serial
    golden, and write one machine-readable report.
"""

from __future__ import annotations

import argparse
import sys
import time

from .facile import compile_source
from .isa.assembler import assemble
from .isa.disasm import disassemble_program
from .isa.simulate import run_facile_functional, run_golden
from .ooo.facile_inorder import run_facile_inorder
from .ooo.facile_ooo import run_facile_ooo
from .ooo.fastsim import run_fastsim
from .ooo.inorder import run_inorder
from .ooo.reference import run_reference
from .workloads.minic import MinicCompiler, read_out_buffer
from .workloads.suite import WORKLOADS, build_cached


def _cmd_compile(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    result = compile_source(
        source,
        name=args.file,
        flush_policy="live" if args.flush_live else "all",
        coalesce=not args.no_coalesce,
        fold=not args.no_fold,
    )
    sim = result.simulator
    summary = sim.division_summary
    print(f"compiled {args.file}")
    print(f"  actions:              {summary['n_actions']}")
    print(f"  dynamic result tests: {summary['n_verify_actions']}")
    print(f"  constant folds:       {result.n_constant_folds}")
    print(f"  dynamic variables:    {', '.join(summary['dynamic_vars']) or '(none)'}")
    print(f"  flushed globals:      {', '.join(summary['flush_globals']) or '(none)'}")
    if args.dump:
        text = {
            "slow": sim.source_slow,
            "fast": sim.source_fast,
            "plain": sim.source_plain,
        }[args.dump]
        print(f"\n--- generated {args.dump} engine ---")
        print(text)
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    program = assemble(open(args.file).read())
    print(f"text: {len(program.text_words)} words at {program.text_base:#x}, "
          f"data: {len(program.data_bytes)} bytes at {program.data_base:#x}, "
          f"entry {program.entry:#x}")
    if args.listing:
        for i, word in enumerate(program.text_words):
            addr = program.text_base + 4 * i
            labels = [s for s, a in program.symbols.items() if a == addr]
            tag = f"  <{', '.join(labels)}>" if labels else ""
            print(f"  {addr:#010x}: {word:08x}{tag}")
    if args.disasm:
        print(disassemble_program(program))
    if args.symbols:
        for name, addr in sorted(program.symbols.items(), key=lambda kv: kv[1]):
            print(f"  {addr:#010x} {name}")
    return 0


_RUNNERS = {
    "golden": lambda p, a: run_golden(p),
    "functional": lambda p, a: run_facile_functional(
        p, memoized=not a.plain, trace_jit=a.trace_jit,
        trace_threshold=a.trace_threshold,
        cache_limit_bytes=a.cache_limit, cache_evict=a.cache_evict,
        flat_pack=a.flat_pack,
        cache_dir=a.cache_dir, cache_load=a.cache_load, cache_save=a.cache_save,
        replay_backend=a.replay_backend, profile=a.profile,
    ),
    "inorder": lambda p, a: run_facile_inorder(
        p, memoized=not a.plain, trace_jit=a.trace_jit,
        trace_threshold=a.trace_threshold,
        cache_limit_bytes=a.cache_limit, cache_evict=a.cache_evict,
        flat_pack=a.flat_pack,
        cache_dir=a.cache_dir, cache_load=a.cache_load, cache_save=a.cache_save,
        replay_backend=a.replay_backend, profile=a.profile,
    ),
    "inorder-ref": lambda p, a: run_inorder(p),
    "ooo": lambda p, a: run_facile_ooo(
        p, memoized=not a.plain, trace_jit=a.trace_jit,
        trace_threshold=a.trace_threshold,
        cache_limit_bytes=a.cache_limit, cache_evict=a.cache_evict,
        flat_pack=a.flat_pack,
        cache_dir=a.cache_dir, cache_load=a.cache_load, cache_save=a.cache_save,
        replay_backend=a.replay_backend, profile=a.profile,
    ),
    "ooo-ref": lambda p, a: run_reference(p),
    "ooo-fastsim": lambda p, a: run_fastsim(
        p, memoize=not a.plain,
        memo_limit_bytes=a.cache_limit, memo_evict=a.cache_evict,
        flat_pack=a.flat_pack,
        cache_dir=a.cache_dir, cache_load=a.cache_load, cache_save=a.cache_save,
        replay_backend=a.replay_backend,
    ),
}


def _report_run(kind: str, result, elapsed: float) -> None:
    if kind == "golden":
        print(f"retired {result.instret:,} instructions in {elapsed:.2f}s "
              f"({result.instret / max(elapsed, 1e-9) / 1000:.1f} kips)")
        return
    stats = getattr(result, "stats", None)
    if stats is not None and hasattr(stats, "cycles") and getattr(stats, "cycles", 0):
        print(f"cycles {stats.cycles:,}  retired {stats.retired:,}  "
              f"IPC {stats.retired / max(1, stats.cycles):.2f}")
        if hasattr(stats, "branches"):
            print(f"branches {stats.branches:,} ({stats.mispredicts:,} mispredicted), "
                  f"loads {stats.loads:,}, stores {stats.stores:,}")
    retired = getattr(result, "retired", None) or getattr(
        getattr(result, "stats", None), "retired", 0
    )
    print(f"host time {elapsed:.2f}s ({retired / max(elapsed, 1e-9) / 1000:.1f} kips)")
    run_stats = getattr(result, "run_stats", None) or getattr(result, "stats", None)
    if hasattr(result, "run_stats") and result.run_stats is not None:
        rs = result.run_stats
        if getattr(rs, "steps_total", 0):
            print(f"steps: {rs.steps_total:,} total, {rs.steps_fast:,} fast, "
                  f"{rs.steps_slow:,} slow, {rs.steps_recovered:,} recovered")
    del run_stats
    engine = getattr(result, "engine", None)
    # Replay backend status (printed whenever a non-default backend was
    # requested; the CI smoke greps for "replay backend: ...").
    bstat = getattr(engine, "backend_status", None) or getattr(
        result, "backend_status", None
    )
    if bstat is not None and (
        bstat["requested"] != "python" or bstat["active"] != "python"
    ):
        if bstat["active"] == "c":
            line = (f"replay backend: c "
                    f"(kernel ready in {bstat['compile_ms']:.1f} ms")
            native = getattr(engine, "_cnative", None) or getattr(
                result, "_cnative", None
            )
            if native is not None:
                ns = native.summary()
                line += (f"; {ns['chains_lowered']:,} chains lowered, "
                         f"{ns['runs']:,} kernel runs")
                if "python_fallbacks" in ns:
                    line += f", {ns['python_fallbacks']:,} python fallbacks"
            print(line + ")")
            counts = getattr(native, "extern_counts", None)
            if counts is not None:
                by_name = counts()
                n_native = sum(c["native"] for c in by_name.values())
                n_python = sum(c["python"] for c in by_name.values())
                detail = ", ".join(
                    f"{name} {c['native']:,}/{c['python']:,}"
                    for name, c in sorted(by_name.items())
                )
                print(f"externs: {n_native:,} native / {n_python:,} python"
                      + (f" ({detail})" if detail else ""))
        else:
            print(f"replay backend: python "
                  f"(requested {bstat['requested']}: {bstat['reason']})")
    manager = getattr(engine, "traces", None)
    if manager is not None and manager.stats.traces_compiled:
        agg = manager.aggregate()
        print(f"traces: {manager.stats.traces_compiled} compiled "
              f"({manager.stats.traces_invalidated} invalidated), "
              f"{agg['steps']:,} steps replayed in {agg['calls']:,} calls, "
              f"{agg['side_exits']:,} side exits")
    cstats = getattr(getattr(engine, "cache", None), "stats", None) or getattr(
        result, "mstats", None
    )
    if cstats is not None and (cstats.clears or getattr(cstats, "evictions", 0)):
        print(f"cache: {cstats.clears} clears, "
              f"{cstats.evictions} eviction rounds "
              f"({cstats.entries_evicted:,} entries, "
              f"{cstats.bytes_refunded:,} bytes refunded)")
    if cstats is not None and getattr(cstats, "packs", 0):
        pool = getattr(getattr(engine, "cache", None), "pool", None) or getattr(
            result, "pool", None
        )
        line = (f"flat pack: {cstats.packs:,} packs, "
                f"{cstats.unpacks:,} unpacks")
        if pool is not None:
            hit_rate = 100 * pool.hits / max(1, pool.hits + pool.misses)
            line += (f"; intern pool {pool.bytes_live:,} bytes live, "
                     f"{hit_rate:.1f}% hit rate, "
                     f"{pool.bytes_saved:,} bytes saved")
        print(line)
    # Snapshot outcome lines (the CI smoke greps for "snapshot: hit").
    holder = engine if engine is not None else result
    load = getattr(holder, "snapshot_load", None)
    if load is not None:
        if load.hit:
            shared = getattr(cstats, "bytes_shared", 0) if cstats else 0
            print(f"snapshot: hit — {load.entries:,} entries, "
                  f"{load.pool_values:,} pool values, "
                  f"{load.file_bytes:,} file bytes "
                  f"({shared:,} bytes still mmap-shared)")
        else:
            print(f"snapshot: miss ({load.reason}) — cold start")
    save = getattr(holder, "snapshot_save", None)
    if save is not None:
        if save.hit:
            print(f"snapshot: saved {save.entries:,} entries "
                  f"({save.file_bytes:,} bytes) to {save.path}")
        else:
            print(f"snapshot: {save.reason}")


def _cmd_run(args: argparse.Namespace) -> int:
    program = assemble(open(args.file).read())
    runner = _RUNNERS[args.sim]
    start = time.perf_counter()
    result = runner(program, args)
    elapsed = time.perf_counter() - start
    _report_run(args.sim, result, elapsed)
    return 0


def _cmd_minic(args: argparse.Namespace) -> int:
    compiler = MinicCompiler(open(args.file).read())
    if args.emit_asm:
        print(compiler.assembly())
        return 0
    program = compiler.compile()
    sim = run_golden(program, max_steps=args.max_steps)
    if not sim.halted:
        print("program did not halt within the step budget", file=sys.stderr)
        return 1
    print(f"retired {sim.instret:,} instructions")
    values = read_out_buffer(sim.mem)
    if values:
        print("out():", ", ".join(str(v) for v in values))
    return 0


_BUILTIN_SIMS = ("functional", "inorder", "ooo")


def _builtin_sim_source(name: str) -> str:
    if name == "functional":
        from .isa.facile_src import functional_sim_source

        return functional_sim_source()
    if name == "inorder":
        from .ooo.facile_inorder import inorder_sim_source

        return inorder_sim_source()
    from .ooo.facile_ooo import ooo_sim_source

    return ooo_sim_source()


def _cmd_check(args: argparse.Namespace) -> int:
    from .facile.analysis import check_file, check_model_file, run_check

    only = set(args.only) if args.only else None
    reports = []
    for name in _BUILTIN_SIMS if args.builtin == "all" else (
        [args.builtin] if args.builtin else []
    ):
        reports.append(
            run_check(_builtin_sim_source(name), f"<builtin:{name}>", only=only)
        )
    for path in args.files:
        # .py arguments are uarch model modules: protocol audit only.
        if path.endswith(".py"):
            reports.append(check_model_file(path))
        else:
            reports.append(check_file(path, only=only))
    if not reports:
        print("check: no inputs (pass files or --builtin)", file=sys.stderr)
        return 2

    if args.format == "json":
        import json

        print(json.dumps(
            {"version": 1, "files": [r.to_json() for r in reports]}, indent=2
        ))
    else:
        for report in reports:
            print(report.render_text())
    return max(r.exit_code(werror=args.werror) for r in reports)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.server import run_server

    run_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        job_timeout=args.timeout,
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .serve.fleet import run_fleet

    def _progress(event: dict) -> None:
        if args.verbose and event["event"] != "progress":
            print(f"  [{event['event']}] job {event.get('job')}", flush=True)

    report = run_fleet(
        workloads=args.workloads.split(",") if args.workloads else None,
        simulators=args.simulators.split(",") if args.simulators else None,
        scale=args.scale,
        workers=args.workers,
        cache_dir=args.cache_dir,
        verify=not args.no_verify,
        timeout=args.timeout,
        replay_backend=args.replay_backend,
        progress=_progress,
    )
    print(report.render_text())
    if args.report:
        path = report.write(args.report)
        print(f"\nreport written to {path}")
    if report.failed_cells:
        for c in report.failed_cells:
            print(f"FAILED {c.workload}/{c.simulator}: {c.reason}",
                  file=sys.stderr)
        return 1
    if report.verified and not report.parity_ok:
        print("FAILED: parallel/serial parity mismatch", file=sys.stderr)
        return 1
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    if args.name is None:
        print(f"{'name':<10} {'class':<5} description")
        for w in WORKLOADS.values():
            print(f"{w.name:<10} {w.category:<5} {w.description}")
        return 0
    program = build_cached(args.name, args.scale)
    runner = _RUNNERS[args.sim]
    start = time.perf_counter()
    result = runner(program, args)
    elapsed = time.perf_counter() - start
    _report_run(args.sim, result, elapsed)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Facile (PLDI 2001) reproduction: compile and run "
        "fast-forwarding processor simulators.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a Facile description")
    p.add_argument("file")
    p.add_argument("--dump", choices=["slow", "fast", "plain"], help="print a generated engine")
    p.add_argument("--no-coalesce", action="store_true", help="one action per dynamic statement")
    p.add_argument("--no-fold", action="store_true", help="disable constant folding")
    p.add_argument("--flush-live", action="store_true", help="elide dead global flushes")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("asm", help="assemble SPARC-lite source")
    p.add_argument("file")
    p.add_argument("--listing", action="store_true", help="print a hex listing")
    p.add_argument("--symbols", action="store_true", help="print the symbol table")
    p.add_argument("--disasm", action="store_true", help="print a disassembly listing")
    p.set_defaults(func=_cmd_asm)

    p = sub.add_parser("run", help="assemble and simulate a SPARC-lite program")
    p.add_argument("file")
    p.add_argument("--sim", choices=sorted(_RUNNERS), default="golden")
    p.add_argument("--plain", action="store_true", help="disable memoization")
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("minic", help="compile and run a minic program")
    p.add_argument("file")
    p.add_argument("--emit-asm", action="store_true", help="print generated assembly")
    p.add_argument("--max-steps", type=int, default=50_000_000)
    p.set_defaults(func=_cmd_minic)

    p = sub.add_parser("check", help="run static analysis over Facile sources")
    p.add_argument(
        "files", nargs="*",
        help="Facile sources to check (.py files are audited as uarch "
        "model modules against the native-dispatch protocol)",
    )
    p.add_argument(
        "--builtin", choices=[*_BUILTIN_SIMS, "all"],
        help="also check a built-in simulator description",
    )
    p.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default text)",
    )
    p.add_argument(
        "--werror", action="store_true",
        help="treat warnings as errors (exit 1 when any warning fires)",
    )
    p.add_argument(
        "--only", action="append", metavar="PASS",
        help="run only the named analysis pass (repeatable)",
    )
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("serve", help="run the local simulation service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7841)
    p.add_argument("--workers", type=int, default=2,
                   help="worker shard processes (default 2)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="shared content-addressed snapshot store; jobs "
                   "for the same (program × config) reuse warm snapshots")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="default per-job wall-clock deadline")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "fleet", help="run the benchmark grid in parallel and aggregate"
    )
    p.add_argument("--workloads", default=None,
                   help="comma-separated workloads (default: whole suite)")
    p.add_argument("--simulators", default=None,
                   help="comma-separated simulator configs "
                   "(default: all five)")
    p.add_argument("--scale", type=int, default=None,
                   help="override every workload's scale "
                   "(default: per-workload test scale)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="shared snapshot store (default: private tmp dir)")
    p.add_argument("--report", default="bench_results/BENCH_8.json",
                   metavar="FILE", help="machine-readable report path "
                   "(default bench_results/BENCH_8.json)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the serial golden parity pass")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-cell wall-clock deadline")
    p.add_argument("--replay-backend", choices=("python", "c"),
                   default="python")
    p.add_argument("--verbose", action="store_true",
                   help="print per-job lifecycle events")
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser("workloads", help="list or run the SPEC95-analogue suite")
    p.add_argument("name", nargs="?", help="workload to run (omit to list)")
    p.add_argument("--scale", type=int, default=None)
    p.add_argument("--sim", choices=sorted(_RUNNERS), default="ooo")
    p.add_argument("--plain", action="store_true")
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_workloads)
    return parser


def _add_trace_flags(p: argparse.ArgumentParser) -> None:
    g = p.add_mutually_exclusive_group()
    g.add_argument(
        "--trace-jit", dest="trace_jit", action="store_true", default=True,
        help="compile hot replay chains to superblocks (default)",
    )
    g.add_argument(
        "--no-trace-jit", dest="trace_jit", action="store_false",
        help="replay through the interpreter only",
    )
    p.add_argument(
        "--trace-threshold", type=int, default=64, metavar="N",
        help="replays before a chain is promoted to a trace (default 64)",
    )
    p.add_argument(
        "--cache-limit", type=int, default=None, metavar="BYTES",
        help="action-cache byte budget (default: unlimited, the paper "
        "uses 256 MB)",
    )
    p.add_argument(
        "--cache-evict", choices=["clear", "generational"],
        default="generational",
        help="policy when the budget is exceeded: 'clear' drops the "
        "whole cache (paper §6.2), 'generational' evicts only the "
        "coldest entries (default)",
    )
    p.add_argument(
        "--no-flat-pack", dest="flat_pack", action="store_false",
        default=True,
        help="keep completed cache entries as linked record objects "
        "instead of flat-packing them into contiguous streams",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed snapshot store: load a warm action "
        "cache for this (simulator × workload) pair if present, and "
        "save the cache back after the run",
    )
    p.add_argument(
        "--cache-load", default=None, metavar="FILE",
        help="load the action cache from a specific snapshot file "
        "(overrides the --cache-dir load path)",
    )
    p.add_argument(
        "--cache-save", default=None, metavar="FILE",
        help="save the action cache to a specific snapshot file after "
        "the run (overrides the --cache-dir save path)",
    )
    p.add_argument(
        "--replay-backend", choices=("python", "c"), default="python",
        help="packed-chain replay backend: the Python loop (default) or "
        "a C kernel compiled once per process, degrading to Python "
        "when no C compiler is available",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="count fast-engine executions per action (hot-action "
        "analysis); forces the interpreter tiers, so traces and the C "
        "replay kernel are bypassed for the run",
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into something like `head`; not an error.
        return 0
