"""Micro-architecture substrates: caches and branch predictors.

These are the external, *un-memoized* components, matching the paper's
split: "the branch predictor and cache simulator are not memoized".
"""

from .branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    FrontEndPredictor,
    GSharePredictor,
    ReturnAddressStack,
    TournamentPredictor,
)
from .cache import CacheArray, CacheConfig, CacheHierarchy, HierarchyConfig

__all__ = [
    "BimodalPredictor",
    "BranchTargetBuffer",
    "CacheArray",
    "CacheConfig",
    "CacheHierarchy",
    "FrontEndPredictor",
    "GSharePredictor",
    "TournamentPredictor",
    "HierarchyConfig",
    "ReturnAddressStack",
]
