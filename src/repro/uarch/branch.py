"""Branch prediction substrates.

Like the cache simulator, the branch predictor is external to the
memoized pipeline model (paper §6.2: "the branch predictor and cache
simulator are not memoized").  Provided predictors:

* :class:`BimodalPredictor` — PC-indexed 2-bit saturating counters;
* :class:`GSharePredictor` — global-history XOR PC indexing;
* :class:`TournamentPredictor` — chooser between the two above;
* :class:`BranchTargetBuffer` — direct-mapped target cache for
  indirect jumps (``jmpl``);
* :class:`ReturnAddressStack` — a small RAS for call/return pairs;
* :class:`AlwaysTaken` / :class:`AlwaysNotTaken` — degenerate baselines
  used by ablation benchmarks.

All predictors are deterministic functions of their update history.

Module protocol (native externs)
--------------------------------

Every model keeps its mutable state in fixed-size ``array('q')``
buffers and exposes two methods:

* ``state_arrays()`` — a name -> ``array('q')`` map of those buffers.
  The C replay kernel (:mod:`repro.facile.cbackend`) binds the same
  buffers zero-copy, so the Python methods here and the native kernel
  code mutate *identical* memory; the Python classes remain the
  executable specification, with parity enforced by test.
* ``config_key()`` — a hashable description of the model's shape; the
  native registry matches on its leading tag to pick a dispatch kind.

Scalar state (gshare history, RAS depth-in-use) lives in a one-element
``regs`` array behind a property, for the same reason.  Statistics
recorded natively accumulate as deltas in a ``stats_delta`` array and
are drained into the Python dataclasses at kernel sync points
(:meth:`FrontEndPredictor.drain_stats`).

Conformance to this protocol is checked statically:
``repro check --builtin all`` audits every class here (FAC501 for
``array('q')`` state missing from ``state_arrays()``, FAC502 for
mutable Python containers outside the protocol, FAC503 for
``config_key()`` under-keying a constructor parameter — see
:mod:`repro.facile.ir_verify`).  A model that breaks the protocol is
not an error at run time: the native registry simply refuses it and
the extern stays on the Python callback path, with the reason
reported by ``cache_summary`` (``why not native: ...``).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass


@dataclass
class PredictorStats:
    predictions: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0

    def record(self, was_correct: bool) -> None:
        self.predictions += 1
        if was_correct:
            self.correct += 1


class BimodalPredictor:
    """Classic 2-bit saturating counter table, PC-indexed."""

    def __init__(self, entries: int = 2048):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.table = array("q", [2]) * entries  # weakly taken
        self.stats = PredictorStats()

    def config_key(self) -> tuple:
        return ("bimodal", self.entries)

    def state_arrays(self) -> dict[str, array]:
        return {"table": self.table}

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        counter = self.table[idx]
        if taken:
            self.table[idx] = min(3, counter + 1)
        else:
            self.table[idx] = max(0, counter - 1)


class GSharePredictor:
    """Global-history predictor: counters indexed by (history XOR pc)."""

    def __init__(self, history_bits: int = 10):
        self.history_bits = history_bits
        self.entries = 1 << history_bits
        self.table = array("q", [2]) * self.entries
        self.regs = array("q", [0])  # [0] = global history
        self.stats = PredictorStats()

    def config_key(self) -> tuple:
        return ("gshare", self.history_bits)

    def state_arrays(self) -> dict[str, array]:
        return {"table": self.table, "regs": self.regs}

    @property
    def history(self) -> int:
        return self.regs[0]

    @history.setter
    def history(self, value: int) -> None:
        self.regs[0] = value

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.regs[0]) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        counter = self.table[idx]
        self.table[idx] = min(3, counter + 1) if taken else max(0, counter - 1)
        self.regs[0] = ((self.regs[0] << 1) | (1 if taken else 0)) & (self.entries - 1)


class TournamentPredictor:
    """Alpha-21264-style combining predictor: a chooser table of 2-bit
    counters picks between a bimodal and a gshare component per branch,
    trained toward whichever component was right."""

    def __init__(self, entries: int = 2048, history_bits: int = 10):
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GSharePredictor(history_bits)
        self.chooser = array("q", [2]) * entries  # >=2 prefers gshare
        self.entries = entries
        self.stats = PredictorStats()

    def config_key(self) -> tuple:
        return ("tournament", self.entries, self.gshare.history_bits)

    def state_arrays(self) -> dict[str, array]:
        return {
            "chooser": self.chooser,
            "bimodal": self.bimodal.table,
            "gshare": self.gshare.table,
            "gshare_regs": self.gshare.regs,
        }

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        if self.chooser[self._index(pc)] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        bimodal_right = self.bimodal.predict(pc) == taken
        gshare_right = self.gshare.predict(pc) == taken
        if gshare_right and not bimodal_right:
            self.chooser[idx] = min(3, self.chooser[idx] + 1)
        elif bimodal_right and not gshare_right:
            self.chooser[idx] = max(0, self.chooser[idx] - 1)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)


class AlwaysTaken:
    def __init__(self):
        self.stats = PredictorStats()

    def config_key(self) -> tuple:
        return ("taken",)

    def state_arrays(self) -> dict[str, array]:
        return {}

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class AlwaysNotTaken:
    def __init__(self):
        self.stats = PredictorStats()

    def config_key(self) -> tuple:
        return ("nottaken",)

    def state_arrays(self) -> dict[str, array]:
        return {}

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class BranchTargetBuffer:
    """Direct-mapped branch target cache (for indirect jumps)."""

    def __init__(self, entries: int = 512):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.tags = array("q", [-1]) * entries
        self.targets = array("q", [0]) * entries
        self.stats = PredictorStats()

    def config_key(self) -> tuple:
        return ("btb", self.entries)

    def state_arrays(self) -> dict[str, array]:
        return {"tags": self.tags, "targets": self.targets}

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> int | None:
        idx = self._index(pc)
        if self.tags[idx] == pc:
            return self.targets[idx]
        return None

    def update(self, pc: int, target: int) -> None:
        idx = self._index(pc)
        self.tags[idx] = pc
        self.targets[idx] = target


class ReturnAddressStack:
    """A bounded return-address stack; overflows wrap (oldest lost)."""

    def __init__(self, depth: int = 16):
        self.depth = depth
        self.buf = array("q", [0]) * depth
        self.regs = array("q", [0])  # [0] = entries in use

    def config_key(self) -> tuple:
        return ("ras", self.depth)

    def state_arrays(self) -> dict[str, array]:
        return {"buf": self.buf, "regs": self.regs}

    @property
    def stack(self) -> list[int]:
        return list(self.buf[: self.regs[0]])

    def push(self, addr: int) -> None:
        n = self.regs[0]
        if n == self.depth:
            # Full: drop the oldest entry, keep the stack order.
            buf = self.buf
            for i in range(self.depth - 1):
                buf[i] = buf[i + 1]
            buf[self.depth - 1] = addr
            return
        self.buf[n] = addr
        self.regs[0] = n + 1

    def pop(self) -> int | None:
        n = self.regs[0]
        if n == 0:
            return None
        self.regs[0] = n - 1
        return self.buf[n - 1]


#: stats_delta layout shared with the C kernel: [predictions, correct].
FE_STAT_PREDICTIONS = 0
FE_STAT_CORRECT = 1
FE_NSTATS = 2


class FrontEndPredictor:
    """The combined front end used by the OOO simulators.

    ``predict_branch``/``resolve_branch`` handle conditional branches;
    ``predict_indirect``/``resolve_indirect`` handle ``jmpl`` targets
    through the BTB (with a RAS fast path for returns).
    """

    def __init__(self, direction=None, btb: BranchTargetBuffer | None = None,
                 ras: ReturnAddressStack | None = None):
        self.direction = direction or BimodalPredictor()
        self.btb = btb or BranchTargetBuffer()
        self.ras = ras or ReturnAddressStack()
        self.stats = PredictorStats()
        # Native dispatches bump these deltas in-kernel; drain_stats()
        # folds them into self.stats at the kernel's sync points.
        self.stats_delta = array("q", [0]) * FE_NSTATS

    def config_key(self) -> tuple:
        direction = getattr(self.direction, "config_key", lambda: ("?",))()
        return ("frontend", direction, self.btb.entries, self.ras.depth)

    def state_arrays(self) -> dict[str, array]:
        out = {"stats_delta": self.stats_delta}
        for name, arr in getattr(self.direction, "state_arrays", dict)().items():
            out[f"direction.{name}"] = arr
        for name, arr in self.btb.state_arrays().items():
            out[f"btb.{name}"] = arr
        for name, arr in self.ras.state_arrays().items():
            out[f"ras.{name}"] = arr
        return out

    def drain_stats(self) -> None:
        delta = self.stats_delta
        if delta[FE_STAT_PREDICTIONS]:
            self.stats.predictions += delta[FE_STAT_PREDICTIONS]
            self.stats.correct += delta[FE_STAT_CORRECT]
            delta[FE_STAT_PREDICTIONS] = 0
            delta[FE_STAT_CORRECT] = 0

    def predict_branch(self, pc: int) -> bool:
        return self.direction.predict(pc)

    def resolve_branch(self, pc: int, taken: bool) -> bool:
        """Update state; returns True when the prediction was correct."""
        correct = self.direction.predict(pc) == taken
        self.direction.update(pc, taken)
        self.stats.record(correct)
        return correct

    def note_call(self, return_addr: int) -> None:
        self.ras.push(return_addr)

    def resolve_indirect(self, pc: int, target: int, is_return: bool) -> bool:
        """Update BTB/RAS; returns True when the target was predicted."""
        if is_return:
            predicted = self.ras.pop()
        else:
            predicted = self.btb.predict(pc)
        correct = predicted == target
        self.btb.update(pc, target)
        self.stats.record(correct)
        return correct
