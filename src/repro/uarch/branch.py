"""Branch prediction substrates.

Like the cache simulator, the branch predictor is external to the
memoized pipeline model (paper §6.2: "the branch predictor and cache
simulator are not memoized").  Provided predictors:

* :class:`BimodalPredictor` — PC-indexed 2-bit saturating counters;
* :class:`GSharePredictor` — global-history XOR PC indexing;
* :class:`BranchTargetBuffer` — direct-mapped target cache for
  indirect jumps (``jmpl``);
* :class:`ReturnAddressStack` — a small RAS for call/return pairs;
* :class:`AlwaysTaken` / :class:`AlwaysNotTaken` — degenerate baselines
  used by ablation benchmarks.

All predictors are deterministic functions of their update history.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PredictorStats:
    predictions: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0

    def record(self, was_correct: bool) -> None:
        self.predictions += 1
        if was_correct:
            self.correct += 1


class BimodalPredictor:
    """Classic 2-bit saturating counter table, PC-indexed."""

    def __init__(self, entries: int = 2048):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.table = [2] * entries  # weakly taken
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        counter = self.table[idx]
        if taken:
            self.table[idx] = min(3, counter + 1)
        else:
            self.table[idx] = max(0, counter - 1)


class GSharePredictor:
    """Global-history predictor: counters indexed by (history XOR pc)."""

    def __init__(self, history_bits: int = 10):
        self.history_bits = history_bits
        self.entries = 1 << history_bits
        self.table = [2] * self.entries
        self.history = 0
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        counter = self.table[idx]
        self.table[idx] = min(3, counter + 1) if taken else max(0, counter - 1)
        self.history = ((self.history << 1) | (1 if taken else 0)) & (self.entries - 1)


class TournamentPredictor:
    """Alpha-21264-style combining predictor: a chooser table of 2-bit
    counters picks between a bimodal and a gshare component per branch,
    trained toward whichever component was right."""

    def __init__(self, entries: int = 2048, history_bits: int = 10):
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GSharePredictor(history_bits)
        self.chooser = [2] * entries  # >=2 prefers gshare
        self.entries = entries
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        if self.chooser[self._index(pc)] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        bimodal_right = self.bimodal.predict(pc) == taken
        gshare_right = self.gshare.predict(pc) == taken
        if gshare_right and not bimodal_right:
            self.chooser[idx] = min(3, self.chooser[idx] + 1)
        elif bimodal_right and not gshare_right:
            self.chooser[idx] = max(0, self.chooser[idx] - 1)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)


class AlwaysTaken:
    def __init__(self):
        self.stats = PredictorStats()

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class AlwaysNotTaken:
    def __init__(self):
        self.stats = PredictorStats()

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class BranchTargetBuffer:
    """Direct-mapped branch target cache (for indirect jumps)."""

    def __init__(self, entries: int = 512):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.tags = [-1] * entries
        self.targets = [0] * entries
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> int | None:
        idx = self._index(pc)
        if self.tags[idx] == pc:
            return self.targets[idx]
        return None

    def update(self, pc: int, target: int) -> None:
        idx = self._index(pc)
        self.tags[idx] = pc
        self.targets[idx] = target


class ReturnAddressStack:
    """A bounded return-address stack; overflows wrap (oldest lost)."""

    def __init__(self, depth: int = 16):
        self.depth = depth
        self.stack: list[int] = []

    def push(self, addr: int) -> None:
        self.stack.append(addr)
        if len(self.stack) > self.depth:
            self.stack.pop(0)

    def pop(self) -> int | None:
        return self.stack.pop() if self.stack else None


class FrontEndPredictor:
    """The combined front end used by the OOO simulators.

    ``predict_branch``/``resolve_branch`` handle conditional branches;
    ``predict_indirect``/``resolve_indirect`` handle ``jmpl`` targets
    through the BTB (with a RAS fast path for returns).
    """

    def __init__(self, direction=None, btb: BranchTargetBuffer | None = None,
                 ras: ReturnAddressStack | None = None):
        self.direction = direction or BimodalPredictor()
        self.btb = btb or BranchTargetBuffer()
        self.ras = ras or ReturnAddressStack()
        self.stats = PredictorStats()

    def predict_branch(self, pc: int) -> bool:
        return self.direction.predict(pc)

    def resolve_branch(self, pc: int, taken: bool) -> bool:
        """Update state; returns True when the prediction was correct."""
        correct = self.direction.predict(pc) == taken
        self.direction.update(pc, taken)
        self.stats.record(correct)
        return correct

    def note_call(self, return_addr: int) -> None:
        self.ras.push(return_addr)

    def resolve_indirect(self, pc: int, target: int, is_return: bool) -> bool:
        """Update BTB/RAS; returns True when the target was predicted."""
        if is_return:
            predicted = self.ras.pop()
        else:
            predicted = self.btb.predict(pc)
        correct = predicted == target
        self.btb.update(pc, target)
        self.stats.record(correct)
        return correct
