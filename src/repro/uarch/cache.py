"""Non-blocking cache hierarchy simulator.

The paper's out-of-order simulators model "non-blocking data caches"
whose simulator is called from the pipeline model but *not* memoized
(§6.2) — in our reproduction it is an extern, exactly mirroring that
split.  The model:

* two-level hierarchy (L1D, unified L2) with LRU set-associative arrays
  and write-allocate stores;
* **MSHRs** (miss status holding registers) make the L1 non-blocking: a
  miss to a line already in flight coalesces and waits only for the
  remaining fill time; when all MSHRs are busy the access stalls until
  the oldest entry retires;
* deterministic: latency is a pure function of the access sequence, so
  memoized replays that re-drive the cache see identical behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    name: str = "L1D"
    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    assoc: int = 4
    hit_latency: int = 1


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    mshr_coalesced: int = 0
    mshr_stalls: int = 0
    prefetches: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheArray:
    """One level: LRU set-associative tag array (tags only, no data)."""

    def __init__(self, config: CacheConfig):
        if config.size_bytes % (config.line_bytes * config.assoc):
            raise ValueError("cache size must be a multiple of line*assoc")
        self.config = config
        self.n_sets = config.size_bytes // (config.line_bytes * config.assoc)
        self.offset_bits = config.line_bytes.bit_length() - 1
        # Each set is a list of tags in LRU order (index 0 = most recent).
        self.sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def line_of(self, addr: int) -> int:
        return addr >> self.offset_bits

    def lookup(self, addr: int) -> bool:
        """Probe and update LRU; returns hit."""
        line = self.line_of(addr)
        ways = self.sets[line % self.n_sets]
        self.stats.accesses += 1
        if line in ways:
            ways.remove(line)
            ways.insert(0, line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, addr: int) -> int | None:
        """Install a line; returns the evicted line (or None)."""
        line = self.line_of(addr)
        ways = self.sets[line % self.n_sets]
        if line in ways:
            return None
        ways.insert(0, line)
        if len(ways) > self.config.assoc:
            self.stats.evictions += 1
            return ways.pop()
        return None

    def invalidate_all(self) -> None:
        for ways in self.sets:
            ways.clear()


@dataclass
class HierarchyConfig:
    l1: CacheConfig = field(default_factory=lambda: CacheConfig("L1D", 16 * 1024, 32, 4, 1))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig("L2", 256 * 1024, 64, 8, 8))
    memory_latency: int = 40
    mshr_entries: int = 8
    store_latency: int = 1
    # Next-line prefetch on L1 misses: the sequential line is fetched
    # into L1 in the background (an MSHR entry, no extra latency charged
    # to the triggering access).
    prefetch_next_line: bool = False


class CacheHierarchy:
    """L1 + L2 + memory with MSHR-based non-blocking misses.

    ``access(addr, cycle, is_store)`` returns the load-use latency in
    cycles as seen by the pipeline.
    """

    LOAD = 0
    STORE = 1

    def __init__(self, config: HierarchyConfig | None = None):
        self.config = config or HierarchyConfig()
        self.l1 = CacheArray(self.config.l1)
        self.l2 = CacheArray(self.config.l2)
        # line -> cycle at which the fill completes
        self.mshrs: dict[int, int] = {}

    def access(self, addr: int, cycle: int, is_store: bool = False) -> int:
        """Simulate one data access; returns its latency in cycles."""
        addr &= 0xFFFFFFFF
        line = self.l1.line_of(addr)
        self._retire_mshrs(cycle)
        if self.l1.lookup(addr):
            # The line may still be in flight (installed by an earlier
            # miss whose fill has not completed): coalesce on its MSHR.
            pending = self.mshrs.get(line)
            if pending is not None and pending > cycle:
                self.l1.stats.mshr_coalesced += 1
                latency = (pending - cycle) + self.config.l1.hit_latency
            else:
                latency = self.config.l1.hit_latency
            return self.config.store_latency if is_store else latency

        # L1 miss.  Coalesce with an outstanding fill when possible.
        pending = self.mshrs.get(line)
        if pending is not None and pending > cycle:
            self.l1.stats.mshr_coalesced += 1
            fill_wait = pending - cycle
            self._fill_l1(addr)
            latency = fill_wait + self.config.l1.hit_latency
            return self.config.store_latency if is_store else latency

        # Allocate an MSHR; stall if all are busy.
        stall = 0
        if len(self.mshrs) >= self.config.mshr_entries:
            oldest_ready = min(self.mshrs.values())
            stall = max(0, oldest_ready - cycle)
            self.l1.stats.mshr_stalls += 1
            self._retire_mshrs(oldest_ready)

        if self.l2.lookup(addr):
            fill_latency = self.config.l2.hit_latency
        else:
            fill_latency = self.config.l2.hit_latency + self.config.memory_latency
            self.l2.fill(addr)
        self._fill_l1(addr)
        self.mshrs[line] = cycle + stall + fill_latency
        latency = stall + fill_latency + self.config.l1.hit_latency
        if self.config.prefetch_next_line:
            self._prefetch(addr + self.config.l1.line_bytes, cycle + stall, fill_latency)
        return self.config.store_latency if is_store else latency

    def _prefetch(self, addr: int, cycle: int, base_latency: int) -> None:
        """Pull the sequential line into L1 if it is absent and an MSHR
        slot is free; never stalls the demand stream and never perturbs
        the demand hit/miss statistics."""
        line = self.l1.line_of(addr)
        ways = self.l1.sets[line % self.l1.n_sets]
        if line in ways or line in self.mshrs:
            return
        if len(self.mshrs) >= self.config.mshr_entries:
            return
        self.l1.stats.prefetches += 1
        l2_line = self.l2.line_of(addr)
        if l2_line not in self.l2.sets[l2_line % self.l2.n_sets]:
            self.l2.fill(addr)
        self._fill_l1(addr)
        self.mshrs[line] = cycle + base_latency

    def _fill_l1(self, addr: int) -> None:
        evicted = self.l1.fill(addr)
        if evicted is not None:
            # Inclusive hierarchy: evicted L1 lines remain in L2.
            pass

    def _retire_mshrs(self, cycle: int) -> None:
        done = [line for line, ready in self.mshrs.items() if ready <= cycle]
        for line in done:
            del self.mshrs[line]

    # -- reporting -----------------------------------------------------------

    @property
    def stats(self) -> dict[str, CacheStats]:
        return {"l1": self.l1.stats, "l2": self.l2.stats}

    def reset_stats(self) -> None:
        self.l1.stats = CacheStats()
        self.l2.stats = CacheStats()
