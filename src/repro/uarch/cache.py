"""Non-blocking cache hierarchy simulator.

The paper's out-of-order simulators model "non-blocking data caches"
whose simulator is called from the pipeline model but *not* memoized
(§6.2) — in our reproduction it is an extern, exactly mirroring that
split.  The model:

* two-level hierarchy (L1D, unified L2) with LRU set-associative arrays
  and write-allocate stores;
* **MSHRs** (miss status holding registers) make the L1 non-blocking: a
  miss to a line already in flight coalesces and waits only for the
  remaining fill time; when all MSHRs are busy the access stalls until
  the oldest entry retires;
* deterministic: latency is a pure function of the access sequence, so
  memoized replays that re-drive the cache see identical behaviour.

Module protocol (native externs): all mutable state lives in fixed-size
``array('q')`` buffers exposed via ``state_arrays()``, shared zero-copy
with the C replay kernel (:mod:`repro.facile.cbackend`); the kernel's
cache model and :meth:`CacheHierarchy.access` mutate identical memory,
so Python and native accesses interleave freely.  ``config_key()``
describes the geometry the native registry must match.  Tag arrays hold
line numbers MRU-first per set with ``-1`` for empty ways; MSHRs are a
compact (line, ready-cycle) pair of arrays with swap-removal — retire
order is irrelevant to the model, which only asks membership and min.
Natively-counted statistics accumulate in ``stats_delta`` and drain
into the per-level :class:`CacheStats` at kernel sync points.

The protocol is audited statically by ``repro check`` (FAC5xx, see
:mod:`repro.facile.ir_verify`): every reachable ``array('q')`` must
appear in ``state_arrays()`` by identity and ``config_key()`` must
cover every behavior-changing :class:`HierarchyConfig` field; a
nonconformant hierarchy is refused by the native registry at bind
time (the extern keeps the Python path) with the reason surfaced in
``cache_summary``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    name: str = "L1D"
    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    assoc: int = 4
    hit_latency: int = 1


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    mshr_coalesced: int = 0
    mshr_stalls: int = 0
    prefetches: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


#: ``stats_delta`` layout shared with the C kernel: seven counters per
#: level, L1 at offset 0 and L2 at offset CS_NSTATS.
CS_ACCESSES = 0
CS_HITS = 1
CS_MISSES = 2
CS_EVICTIONS = 3
CS_COALESCED = 4
CS_STALLS = 5
CS_PREFETCHES = 6
CS_NSTATS = 7

_CS_FIELDS = (
    "accesses", "hits", "misses", "evictions",
    "mshr_coalesced", "mshr_stalls", "prefetches",
)


class CacheArray:
    """One level: LRU set-associative tag array (tags only, no data).

    Ways live in one flat ``array('q')``, ``assoc`` slots per set in
    MRU-first order, ``-1`` marking an empty way.
    """

    def __init__(self, config: CacheConfig):
        if config.size_bytes % (config.line_bytes * config.assoc):
            raise ValueError("cache size must be a multiple of line*assoc")
        self.config = config
        self.n_sets = config.size_bytes // (config.line_bytes * config.assoc)
        self.offset_bits = config.line_bytes.bit_length() - 1
        self.ways = array("q", [-1]) * (self.n_sets * config.assoc)
        self.stats = CacheStats()

    def line_of(self, addr: int) -> int:
        return addr >> self.offset_bits

    def contains_line(self, line: int) -> bool:
        """Membership probe with no LRU or statistics side effects."""
        base = (line % self.n_sets) * self.config.assoc
        ways = self.ways
        for j in range(self.config.assoc):
            if ways[base + j] == line:
                return True
        return False

    def lookup(self, addr: int) -> bool:
        """Probe and update LRU; returns hit."""
        line = self.line_of(addr)
        base = (line % self.n_sets) * self.config.assoc
        ways = self.ways
        self.stats.accesses += 1
        for j in range(self.config.assoc):
            if ways[base + j] == line:
                while j > 0:
                    ways[base + j] = ways[base + j - 1]
                    j -= 1
                ways[base] = line
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        return False

    def fill(self, addr: int) -> int | None:
        """Install a line; returns the evicted line (or None)."""
        line = self.line_of(addr)
        base = (line % self.n_sets) * self.config.assoc
        ways = self.ways
        assoc = self.config.assoc
        for j in range(assoc):
            if ways[base + j] == line:
                return None
        evicted = ways[base + assoc - 1]
        for j in range(assoc - 1, 0, -1):
            ways[base + j] = ways[base + j - 1]
        ways[base] = line
        if evicted != -1:
            self.stats.evictions += 1
            return evicted
        return None

    def invalidate_all(self) -> None:
        ways = self.ways
        for i in range(len(ways)):
            ways[i] = -1


@dataclass
class HierarchyConfig:
    l1: CacheConfig = field(default_factory=lambda: CacheConfig("L1D", 16 * 1024, 32, 4, 1))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig("L2", 256 * 1024, 64, 8, 8))
    memory_latency: int = 40
    mshr_entries: int = 8
    store_latency: int = 1
    # Next-line prefetch on L1 misses: the sequential line is fetched
    # into L1 in the background (an MSHR entry, no extra latency charged
    # to the triggering access).
    prefetch_next_line: bool = False


class CacheHierarchy:
    """L1 + L2 + memory with MSHR-based non-blocking misses.

    ``access(addr, cycle, is_store)`` returns the load-use latency in
    cycles as seen by the pipeline.
    """

    LOAD = 0
    STORE = 1

    def __init__(self, config: HierarchyConfig | None = None):
        self.config = config or HierarchyConfig()
        self.l1 = CacheArray(self.config.l1)
        self.l2 = CacheArray(self.config.l2)
        # Compact MSHR file: slots [0, regs[0]) hold (line, ready-cycle)
        # pairs; retirement swap-removes.
        n = self.config.mshr_entries
        self.mshr_lines = array("q", [-1]) * n
        self.mshr_ready = array("q", [0]) * n
        self.regs = array("q", [0])  # [0] = MSHRs in use
        self.stats_delta = array("q", [0]) * (2 * CS_NSTATS)

    def config_key(self) -> tuple:
        c = self.config
        return (
            "hierarchy",
            c.l1.size_bytes, c.l1.line_bytes, c.l1.assoc, c.l1.hit_latency,
            c.l2.size_bytes, c.l2.line_bytes, c.l2.assoc, c.l2.hit_latency,
            c.memory_latency, c.mshr_entries, c.store_latency,
            bool(c.prefetch_next_line),
        )

    def state_arrays(self) -> dict[str, array]:
        return {
            "l1": self.l1.ways,
            "l2": self.l2.ways,
            "mshr_lines": self.mshr_lines,
            "mshr_ready": self.mshr_ready,
            "regs": self.regs,
            "stats_delta": self.stats_delta,
        }

    def drain_stats(self) -> None:
        delta = self.stats_delta
        for level, off in ((self.l1, 0), (self.l2, CS_NSTATS)):
            stats = level.stats
            for i, name in enumerate(_CS_FIELDS):
                if delta[off + i]:
                    setattr(stats, name, getattr(stats, name) + delta[off + i])
                    delta[off + i] = 0

    # -- MSHR file -----------------------------------------------------------

    def _mshr_get(self, line: int) -> int | None:
        lines = self.mshr_lines
        for i in range(self.regs[0]):
            if lines[i] == line:
                return self.mshr_ready[i]
        return None

    def _mshr_insert(self, line: int, ready: int) -> None:
        n = self.regs[0]
        self.mshr_lines[n] = line
        self.mshr_ready[n] = ready
        self.regs[0] = n + 1

    def _retire_mshrs(self, cycle: int) -> None:
        lines, ready = self.mshr_lines, self.mshr_ready
        n = self.regs[0]
        i = 0
        while i < n:
            if ready[i] <= cycle:
                n -= 1
                lines[i] = lines[n]
                ready[i] = ready[n]
                lines[n] = -1
                ready[n] = 0
            else:
                i += 1
        self.regs[0] = n

    # -- access --------------------------------------------------------------

    def access(self, addr: int, cycle: int, is_store: bool = False) -> int:
        """Simulate one data access; returns its latency in cycles."""
        addr &= 0xFFFFFFFF
        line = self.l1.line_of(addr)
        self._retire_mshrs(cycle)
        if self.l1.lookup(addr):
            # The line may still be in flight (installed by an earlier
            # miss whose fill has not completed): coalesce on its MSHR.
            pending = self._mshr_get(line)
            if pending is not None and pending > cycle:
                self.l1.stats.mshr_coalesced += 1
                latency = (pending - cycle) + self.config.l1.hit_latency
            else:
                latency = self.config.l1.hit_latency
            return self.config.store_latency if is_store else latency

        # L1 miss.  Coalesce with an outstanding fill when possible.
        pending = self._mshr_get(line)
        if pending is not None and pending > cycle:
            self.l1.stats.mshr_coalesced += 1
            fill_wait = pending - cycle
            self._fill_l1(addr)
            latency = fill_wait + self.config.l1.hit_latency
            return self.config.store_latency if is_store else latency

        # Allocate an MSHR; stall if all are busy.
        stall = 0
        if self.regs[0] >= self.config.mshr_entries:
            oldest_ready = min(self.mshr_ready[i] for i in range(self.regs[0]))
            stall = max(0, oldest_ready - cycle)
            self.l1.stats.mshr_stalls += 1
            self._retire_mshrs(oldest_ready)

        if self.l2.lookup(addr):
            fill_latency = self.config.l2.hit_latency
        else:
            fill_latency = self.config.l2.hit_latency + self.config.memory_latency
            self.l2.fill(addr)
        self._fill_l1(addr)
        self._mshr_insert(line, cycle + stall + fill_latency)
        latency = stall + fill_latency + self.config.l1.hit_latency
        if self.config.prefetch_next_line:
            self._prefetch(addr + self.config.l1.line_bytes, cycle + stall, fill_latency)
        return self.config.store_latency if is_store else latency

    def _prefetch(self, addr: int, cycle: int, base_latency: int) -> None:
        """Pull the sequential line into L1 if it is absent and an MSHR
        slot is free; never stalls the demand stream and never perturbs
        the demand hit/miss statistics."""
        line = self.l1.line_of(addr)
        if self.l1.contains_line(line) or self._mshr_get(line) is not None:
            return
        if self.regs[0] >= self.config.mshr_entries:
            return
        self.l1.stats.prefetches += 1
        if not self.l2.contains_line(self.l2.line_of(addr)):
            self.l2.fill(addr)
        self._fill_l1(addr)
        self._mshr_insert(line, cycle + base_latency)

    def _fill_l1(self, addr: int) -> None:
        evicted = self.l1.fill(addr)
        if evicted is not None:
            # Inclusive hierarchy: evicted L1 lines remain in L2.
            pass

    # -- reporting -----------------------------------------------------------

    @property
    def stats(self) -> dict[str, CacheStats]:
        return {"l1": self.l1.stats, "l2": self.l2.stats}

    def reset_stats(self) -> None:
        self.l1.stats = CacheStats()
        self.l2.stats = CacheStats()
        for i in range(len(self.stats_delta)):
            self.stats_delta[i] = 0
