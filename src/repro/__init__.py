"""Reproduction of "Facile: A Language and Compiler for High-Performance
Processor Simulators" (Schnarr, Hill, Larus — PLDI 2001).

Subpackages:

* :mod:`repro.facile` — the Facile language and fast-forwarding compiler
  (the paper's primary contribution);
* :mod:`repro.isa` — the SPARC-lite target ISA: tables, assembler,
  golden functional simulator, and the generated Facile description;
* :mod:`repro.uarch` — external micro-architecture substrates
  (non-blocking caches, branch predictors);
* :mod:`repro.ooo` — three implementations of one out-of-order model:
  conventional, hand-coded memoizing (FastSim), and Facile-compiled;
* :mod:`repro.workloads` — minic compiler + SPEC95-analogue suite;
* :mod:`repro.bench` — measurement harness and paper-style reporting.
"""

__version__ = "1.0.0"
