"""minic: a small C-like language compiled to SPARC-lite assembly.

The paper evaluates on SPEC95 binaries compiled for SPARC.  Offline we
have no SPARC toolchain, so the workload suite is written in *minic* and
compiled by this module — the programs are therefore real compiled code
with function calls, stack frames, spills, and memory traffic, which is
what gives the cache and branch-predictor substrates realistic work.

Language summary::

    int g;                 // global scalar (optional "= N" initializer)
    int table[256];        // global array
    int f(int a, int b) {  // functions; int-only types
        int x = a * 2;     // block-scoped locals
        if (x > b) { return x; } else { return b; }
        while (x < 10) { x = x + 1; }
        for (i = 0; i < 8; i = i + 1) { ... }
        table[x] = f(x, 1); // calls, array indexing
        out(x);             // append to the output buffer (observable)
    }
    int main() { ... }     // entry point

Operators (C precedence): ``|| && | ^ & == != < <= > >= << >> + - * / %
! -`` and array indexing.  ``break``/``continue`` work in both loop
forms (``continue`` in a ``for`` runs the step expression).  ``&&``/``||`` short-circuit.  ``*`` and ``/`` are
unsigned 32-bit (``umul``/``udiv``) — workloads stick to non-negative
values.  Comparisons are signed.

Code generation is a straightforward stack machine: expression results
travel through ``%o0`` with operands spilled to the stack, locals live
in ``%fp``-relative slots, arguments pass in ``%o0``–``%o5``.  This is
deliberately naive compilation — like unoptimized C, it produces the
load/store-heavy instruction mix the timing substrates care about.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..isa.assembler import assemble
from ..isa.program import Program

OUT_BUFFER = 0x0020_0000  # out() appends words here; [0] is the count
MAX_ARGS = 6


class MinicError(Exception):
    pass


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<num>0x[0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<punct><=|>=|==|!=|&&|\|\||<<|>>|[-+*/%<>=!;,(){}\[\]&|^])
    """,
    re.VERBOSE,
)


def _lex(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise MinicError(f"bad character {text[pos]!r} at offset {pos}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        tokens.append((m.lastgroup, m.group()))
    tokens.append(("eof", ""))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass
class Num:
    value: int


@dataclass
class Var:
    name: str


@dataclass
class ArrayRef:
    name: str
    index: object


@dataclass
class Unop:
    op: str
    operand: object


@dataclass
class Binop:
    op: str
    left: object
    right: object


@dataclass
class CallExpr:
    name: str
    args: list


@dataclass
class DeclStmt:
    name: str
    init: object | None


@dataclass
class AssignStmt:
    target: object  # Var or ArrayRef
    value: object


@dataclass
class IfStmt:
    cond: object
    then_body: list
    else_body: list | None


@dataclass
class WhileStmt:
    cond: object
    body: list


@dataclass
class ForStmt:
    init: object | None
    cond: object | None
    step: object | None
    body: list


@dataclass
class BreakStmt:
    pass


@dataclass
class ContinueStmt:
    pass


@dataclass
class ReturnStmt:
    value: object | None


@dataclass
class ExprStmt:
    expr: object


@dataclass
class FuncDef:
    name: str
    params: list[str]
    body: list


@dataclass
class GlobalDef:
    name: str
    size: int | None  # None = scalar
    init: int = 0
    init_values: list[int] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str):
        self.tokens = _lex(text)
        self.pos = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> tuple[str, str]:
        tok = self.tokens[self.pos]
        if tok[0] != "eof":
            self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.peek()[1] == text and self.peek()[0] in ("punct", "ident"):
            self.next()
            return True
        return False

    def expect(self, text: str) -> None:
        if not self.accept(text):
            raise MinicError(f"expected {text!r}, found {self.peek()[1]!r}")

    def ident(self) -> str:
        kind, text = self.next()
        if kind != "ident":
            raise MinicError(f"expected identifier, found {text!r}")
        return text

    def number(self) -> int:
        kind, text = self.next()
        neg = False
        if text == "-":
            neg = True
            kind, text = self.next()
        if kind != "num":
            raise MinicError(f"expected number, found {text!r}")
        value = int(text, 0)
        return -value if neg else value

    # -- program ---------------------------------------------------------

    def parse(self) -> tuple[list[GlobalDef], list[FuncDef]]:
        globals_: list[GlobalDef] = []
        funcs: list[FuncDef] = []
        while self.peek()[0] != "eof":
            self.expect("int")
            name = self.ident()
            if self.peek()[1] == "(":
                funcs.append(self._func(name))
            else:
                globals_.append(self._global(name))
        return globals_, funcs

    def _global(self, name: str) -> GlobalDef:
        size = None
        init = 0
        init_values: list[int] = []
        if self.accept("["):
            size = self.number()
            self.expect("]")
        if self.accept("="):
            if self.accept("{"):
                init_values.append(self.number())
                while self.accept(","):
                    init_values.append(self.number())
                self.expect("}")
            else:
                init = self.number()
        self.expect(";")
        return GlobalDef(name, size, init, init_values)

    def _func(self, name: str) -> FuncDef:
        self.expect("(")
        params: list[str] = []
        if not self.accept(")"):
            while True:
                self.expect("int")
                params.append(self.ident())
                if not self.accept(","):
                    break
            self.expect(")")
        if len(params) > MAX_ARGS:
            raise MinicError(f"{name}: too many parameters (max {MAX_ARGS})")
        body = self._block()
        return FuncDef(name, params, body)

    def _block(self) -> list:
        self.expect("{")
        stmts = []
        while not self.accept("}"):
            stmts.append(self._stmt())
        return stmts

    def _stmt(self):
        kind, text = self.peek()
        if text == "{":
            return IfStmt(Num(1), self._block(), None)  # bare block
        if text == "int":
            self.next()
            name = self.ident()
            init = None
            if self.accept("="):
                init = self._expr()
            self.expect(";")
            return DeclStmt(name, init)
        if text == "if":
            self.next()
            self.expect("(")
            cond = self._expr()
            self.expect(")")
            then_body = self._block()
            else_body = None
            if self.accept("else"):
                if self.peek()[1] == "if":
                    else_body = [self._stmt()]
                else:
                    else_body = self._block()
            return IfStmt(cond, then_body, else_body)
        if text == "while":
            self.next()
            self.expect("(")
            cond = self._expr()
            self.expect(")")
            return WhileStmt(cond, self._block())
        if text == "for":
            self.next()
            self.expect("(")
            init = None if self.peek()[1] == ";" else self._simple()
            self.expect(";")
            cond = None if self.peek()[1] == ";" else self._expr()
            self.expect(";")
            step = None if self.peek()[1] == ")" else self._simple()
            self.expect(")")
            return ForStmt(init, cond, step, self._block())
        if text == "break":
            self.next()
            self.expect(";")
            return BreakStmt()
        if text == "continue":
            self.next()
            self.expect(";")
            return ContinueStmt()
        if text == "return":
            self.next()
            value = None if self.peek()[1] == ";" else self._expr()
            self.expect(";")
            return ReturnStmt(value)
        stmt = self._simple()
        self.expect(";")
        return stmt

    def _simple(self):
        """Assignment or expression statement (no trailing semicolon)."""
        start = self.pos
        if self.peek()[0] == "ident":
            name = self.ident()
            if self.accept("="):
                return AssignStmt(Var(name), self._expr())
            if self.accept("["):
                index = self._expr()
                self.expect("]")
                if self.accept("="):
                    return AssignStmt(ArrayRef(name, index), self._expr())
            self.pos = start
        return ExprStmt(self._expr())

    # -- expressions -------------------------------------------------------

    _LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _expr(self, level: int = 0):
        if level >= len(self._LEVELS):
            return self._unary()
        left = self._expr(level + 1)
        while self.peek()[1] in self._LEVELS[level] and self.peek()[0] == "punct":
            op = self.next()[1]
            right = self._expr(level + 1)
            left = Binop(op, left, right)
        return left

    def _unary(self):
        if self.peek()[1] == "-" and self.peek()[0] == "punct":
            self.next()
            return Unop("-", self._unary())
        if self.peek()[1] == "!" and self.peek()[0] == "punct":
            self.next()
            return Unop("!", self._unary())
        return self._postfix()

    def _postfix(self):
        kind, text = self.peek()
        if kind == "num":
            self.next()
            return Num(int(text, 0))
        if text == "(":
            self.next()
            inner = self._expr()
            self.expect(")")
            return inner
        if kind == "ident":
            name = self.ident()
            if self.accept("("):
                args = []
                if not self.accept(")"):
                    args.append(self._expr())
                    while self.accept(","):
                        args.append(self._expr())
                    self.expect(")")
                return CallExpr(name, args)
            if self.accept("["):
                index = self._expr()
                self.expect("]")
                return ArrayRef(name, index)
            return Var(name)
        raise MinicError(f"expected expression, found {text!r}")


# ---------------------------------------------------------------------------
# Code generation (stack machine)
# ---------------------------------------------------------------------------


class _FuncCompiler:
    def __init__(self, cc: "MinicCompiler", func: FuncDef):
        self.cc = cc
        self.func = func
        self.locals: dict[str, int] = {}  # name -> slot index
        self.lines: list[str] = []
        # (continue_label, break_label) per enclosing loop
        self.loop_stack: list[tuple[str, str]] = []
        self._collect_locals(func.body)
        for p in func.params:
            if p not in self.locals:
                self.locals[p] = len(self.locals)

    def _collect_locals(self, stmts: list) -> None:
        for stmt in stmts:
            if isinstance(stmt, DeclStmt):
                if stmt.name not in self.locals:
                    self.locals[stmt.name] = len(self.locals)
            elif isinstance(stmt, IfStmt):
                self._collect_locals(stmt.then_body)
                if stmt.else_body:
                    self._collect_locals(stmt.else_body)
            elif isinstance(stmt, (WhileStmt, ForStmt)):
                self._collect_locals(stmt.body)

    # -- emission helpers ---------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("        " + line)

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def _slot_offset(self, name: str) -> int:
        return 4 * (self.locals[name] + 1)

    def push(self) -> None:
        self.emit("sub %sp, 4, %sp")
        self.emit("st %o0, [%sp]")

    def pop_to_o1(self) -> None:
        self.emit("ld [%sp], %o1")
        self.emit("add %sp, 4, %sp")

    # -- function frame -------------------------------------------------------

    def compile(self) -> list[str]:
        f = self.func
        self.label(f"mc_{f.name}")
        frame = 4 * len(self.locals)
        self.emit("sub %sp, 8, %sp")
        self.emit("st %o7, [%sp + 4]")
        self.emit("st %fp, [%sp]")
        self.emit("mov %sp, %fp")
        if frame:
            self.emit(f"sub %sp, {frame}, %sp")
        # Spill incoming arguments to their local slots.
        for k, p in enumerate(f.params):
            self.emit(f"st %o{k}, [%fp - {self._slot_offset(p)}]")
        self._stmts(f.body)
        self.label(f"mc_{f.name}__ret")
        self.emit("mov %fp, %sp")
        self.emit("ld [%sp], %fp")
        self.emit("ld [%sp + 4], %o7")
        self.emit("add %sp, 8, %sp")
        self.emit("ret")
        self.emit("nop")
        return self.lines

    # -- statements -------------------------------------------------------------

    def _stmts(self, stmts: list) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt) -> None:
        if isinstance(stmt, DeclStmt):
            if stmt.init is not None:
                self._expr(stmt.init)
                self.emit(f"st %o0, [%fp - {self._slot_offset(stmt.name)}]")
        elif isinstance(stmt, AssignStmt):
            self._assign(stmt)
        elif isinstance(stmt, IfStmt):
            else_label = self.cc.fresh_label("else")
            end_label = self.cc.fresh_label("endif")
            self._branch_if_false(stmt.cond, else_label if stmt.else_body else end_label)
            self._stmts(stmt.then_body)
            if stmt.else_body:
                self.emit(f"b {end_label}")
                self.emit("nop")
                self.label(else_label)
                self._stmts(stmt.else_body)
            self.label(end_label)
        elif isinstance(stmt, WhileStmt):
            top = self.cc.fresh_label("wtop")
            end = self.cc.fresh_label("wend")
            self.label(top)
            self._branch_if_false(stmt.cond, end)
            self.loop_stack.append((top, end))
            self._stmts(stmt.body)
            self.loop_stack.pop()
            self.emit(f"b {top}")
            self.emit("nop")
            self.label(end)
        elif isinstance(stmt, ForStmt):
            if stmt.init is not None:
                self._stmt(stmt.init)
            top = self.cc.fresh_label("ftop")
            step_l = self.cc.fresh_label("fstep")
            end = self.cc.fresh_label("fend")
            self.label(top)
            if stmt.cond is not None:
                self._branch_if_false(stmt.cond, end)
            self.loop_stack.append((step_l, end))  # continue runs the step
            self._stmts(stmt.body)
            self.loop_stack.pop()
            self.label(step_l)
            if stmt.step is not None:
                self._stmt(stmt.step)
            self.emit(f"b {top}")
            self.emit("nop")
            self.label(end)
        elif isinstance(stmt, BreakStmt):
            if not self.loop_stack:
                raise MinicError("break outside of a loop")
            self.emit(f"b {self.loop_stack[-1][1]}")
            self.emit("nop")
        elif isinstance(stmt, ContinueStmt):
            if not self.loop_stack:
                raise MinicError("continue outside of a loop")
            self.emit(f"b {self.loop_stack[-1][0]}")
            self.emit("nop")
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self._expr(stmt.value)
            else:
                self.emit("clr %o0")
            self.emit(f"b mc_{self.func.name}__ret")
            self.emit("nop")
        elif isinstance(stmt, ExprStmt):
            self._expr(stmt.expr)
        else:
            raise MinicError(f"unhandled statement {type(stmt).__name__}")

    def _assign(self, stmt: AssignStmt) -> None:
        target = stmt.target
        if isinstance(target, Var):
            self._expr(stmt.value)
            if target.name in self.locals:
                self.emit(f"st %o0, [%fp - {self._slot_offset(target.name)}]")
            elif target.name in self.cc.globals:
                self.emit(f"set {self.cc.global_label(target.name)}, %l7")
                self.emit("st %o0, [%l7]")
            else:
                raise MinicError(f"assignment to undefined variable {target.name!r}")
        elif isinstance(target, ArrayRef):
            if target.name not in self.cc.globals:
                raise MinicError(f"unknown array {target.name!r}")
            self._expr(target.index)
            self.push()
            self._expr(stmt.value)
            self.pop_to_o1()  # %o1 = index, %o0 = value
            self.emit("sll %o1, 2, %o1")
            self.emit(f"set {self.cc.global_label(target.name)}, %l7")
            self.emit("add %l7, %o1, %l7")
            self.emit("st %o0, [%l7]")
        else:
            raise MinicError("bad assignment target")

    def _branch_if_false(self, cond, target: str) -> None:
        self._expr(cond)
        self.emit("tst %o0")
        self.emit(f"be {target}")
        self.emit("nop")

    # -- expressions ----------------------------------------------------------------

    _CMP_BRANCH = {"==": "be", "!=": "bne", "<": "bl", "<=": "ble", ">": "bg", ">=": "bge"}

    def _expr(self, expr) -> None:
        """Evaluate `expr` into %o0."""
        if isinstance(expr, Num):
            self.emit(f"set {expr.value}, %o0")
        elif isinstance(expr, Var):
            if expr.name in self.locals:
                self.emit(f"ld [%fp - {self._slot_offset(expr.name)}], %o0")
            elif expr.name in self.cc.globals:
                self.emit(f"set {self.cc.global_label(expr.name)}, %l7")
                self.emit("ld [%l7], %o0")
            else:
                raise MinicError(f"undefined variable {expr.name!r}")
        elif isinstance(expr, ArrayRef):
            if expr.name not in self.cc.globals:
                raise MinicError(f"unknown array {expr.name!r}")
            self._expr(expr.index)
            self.emit("sll %o0, 2, %o0")
            self.emit(f"set {self.cc.global_label(expr.name)}, %l7")
            self.emit("add %l7, %o0, %l7")
            self.emit("ld [%l7], %o0")
        elif isinstance(expr, Unop):
            self._expr(expr.operand)
            if expr.op == "-":
                self.emit("sub %g0, %o0, %o0")
            else:  # !
                true_l = self.cc.fresh_label("nott")
                end_l = self.cc.fresh_label("note")
                self.emit("tst %o0")
                self.emit(f"be {true_l}")
                self.emit("nop")
                self.emit("clr %o0")
                self.emit(f"b {end_l}")
                self.emit("nop")
                self.label(true_l)
                self.emit("set 1, %o0")
                self.label(end_l)
        elif isinstance(expr, Binop):
            self._binop(expr)
        elif isinstance(expr, CallExpr):
            self._call(expr)
        else:
            raise MinicError(f"unhandled expression {type(expr).__name__}")

    def _binop(self, expr: Binop) -> None:
        op = expr.op
        if op in ("&&", "||"):
            # Short-circuit: a && b == (a ? (b != 0) : 0)
            end_l = self.cc.fresh_label("sc")
            self._expr(expr.left)
            self.emit("tst %o0")
            if op == "&&":
                self.emit(f"be {end_l}")  # left false -> result 0 already? no:
            else:
                self.emit(f"bne {end_l}")
            self.emit("nop")
            self._expr(expr.right)
            self.label(end_l)
            # Normalize to 0/1.
            norm_t = self.cc.fresh_label("scn")
            norm_e = self.cc.fresh_label("sce")
            self.emit("tst %o0")
            self.emit(f"bne {norm_t}")
            self.emit("nop")
            self.emit("clr %o0")
            self.emit(f"b {norm_e}")
            self.emit("nop")
            self.label(norm_t)
            self.emit("set 1, %o0")
            self.label(norm_e)
            return
        self._expr(expr.left)
        self.push()
        self._expr(expr.right)
        self.pop_to_o1()  # %o1 = left, %o0 = right
        if op in self._CMP_BRANCH:
            true_l = self.cc.fresh_label("cmpt")
            end_l = self.cc.fresh_label("cmpe")
            self.emit("cmp %o1, %o0")
            self.emit(f"{self._CMP_BRANCH[op]} {true_l}")
            self.emit("nop")
            self.emit("clr %o0")
            self.emit(f"b {end_l}")
            self.emit("nop")
            self.label(true_l)
            self.emit("set 1, %o0")
            self.label(end_l)
            return
        table = {
            "+": "add",
            "-": "sub",
            "*": "umul",
            "/": "udiv",
            "&": "and",
            "|": "or",
            "^": "xor",
            "<<": "sll",
            ">>": "srl",
        }
        if op in table:
            self.emit(f"{table[op]} %o1, %o0, %o0")
            return
        if op == "%":
            # o1 % o0 = o1 - (o1/o0)*o0
            self.emit("udiv %o1, %o0, %l7")
            self.emit("umul %l7, %o0, %l7")
            self.emit("sub %o1, %l7, %o0")
            return
        raise MinicError(f"unhandled operator {op!r}")

    def _call(self, expr: CallExpr) -> None:
        if expr.name == "out":
            self._builtin_out(expr)
            return
        if expr.name == "halt":
            self.emit("halt")
            return
        if expr.name not in self.cc.functions:
            raise MinicError(f"call to undefined function {expr.name!r}")
        if len(expr.args) != len(self.cc.functions[expr.name].params):
            raise MinicError(f"wrong arity in call to {expr.name!r}")
        for arg in expr.args:
            self._expr(arg)
            self.push()
        for k in reversed(range(len(expr.args))):
            self.emit(f"ld [%sp], %o{k}")
            self.emit("add %sp, 4, %sp")
        self.emit(f"call mc_{expr.name}")
        self.emit("nop")

    def _builtin_out(self, expr: CallExpr) -> None:
        if len(expr.args) != 1:
            raise MinicError("out() takes one argument")
        self._expr(expr.args[0])
        # [OUT_BUFFER] holds the count; values land after it.
        self.emit(f"set {OUT_BUFFER}, %l7")
        self.emit("ld [%l7], %o1")
        self.emit("add %o1, 1, %o1")
        self.emit("st %o1, [%l7]")
        self.emit("sll %o1, 2, %o1")
        self.emit("add %l7, %o1, %l7")
        self.emit("st %o0, [%l7]")


class MinicCompiler:
    """Compiles a minic program into SPARC-lite assembly + a Program."""

    def __init__(self, source: str):
        self.globals_defs, self.funcs = _Parser(source).parse()
        self.globals = {g.name: g for g in self.globals_defs}
        self.functions = {f.name: f for f in self.funcs}
        self._label_counter = 0
        if "main" not in self.functions:
            raise MinicError("minic program needs a main()")

    def fresh_label(self, base: str) -> str:
        self._label_counter += 1
        return f"L{base}{self._label_counter}"

    def global_label(self, name: str) -> str:
        return f"g_{name}"

    def assembly(self) -> str:
        lines = [
            "        .text",
            "start:",
            "        call mc_main",
            "        nop",
            "        halt",
        ]
        for func in self.funcs:
            lines.extend(_FuncCompiler(self, func).compile())
        lines.append("        .data")
        for g in self.globals_defs:
            lines.append(f"{self.global_label(g.name)}:")
            if g.size is None:
                lines.append(f"        .word {g.init}")
            elif g.init_values:
                if len(g.init_values) > g.size:
                    raise MinicError(f"too many initializers for {g.name!r}")
                words = ", ".join(str(v) for v in g.init_values)
                lines.append(f"        .word {words}")
                remaining = g.size - len(g.init_values)
                if remaining:
                    lines.append(f"        .space {4 * remaining}")
            else:
                lines.append(f"        .space {4 * g.size}")
        return "\n".join(lines) + "\n"

    def compile(self) -> Program:
        return assemble(self.assembly())


def compile_minic(source: str) -> Program:
    """Compile minic source text to a loadable SPARC-lite Program."""
    return MinicCompiler(source).compile()


def read_out_buffer(mem) -> list[int]:
    """Read back the values written by minic's out() builtin."""
    count = mem.read32(OUT_BUFFER)
    return [mem.read32(OUT_BUFFER + 4 * (i + 1)) for i in range(count)]
