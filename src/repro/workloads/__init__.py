"""Workload substrate: the minic compiler and the SPEC95-analogue suite."""

from .minic import MinicCompiler, MinicError, compile_minic, read_out_buffer
from .suite import WORKLOADS, Workload, build_cached, expected_out

__all__ = [
    "MinicCompiler",
    "MinicError",
    "WORKLOADS",
    "Workload",
    "build_cached",
    "compile_minic",
    "expected_out",
    "read_out_buffer",
]
