"""The SPEC95-analogue workload suite.

The paper measures SPEC95 (integer: go, m88ksim, gcc, compress, li,
ijpeg, perl, vortex; floating point: tomcatv, swim, su2cor, hydro2d,
mgrid, applu, turb3d, apsi, fpppp, wave5) with "test" inputs.  No SPEC
binaries exist offline, so each workload here is a minic program chosen
to exercise the *same behavioural axis* that made its namesake
interesting in the paper's tables:

============  ==========================================================
``go``        irregular, data-dependent branching over a board — worst
              case action-cache growth (Table 2: 889 MB in the paper)
``m88ksim``   register-machine instruction interpreter
``gcc``       many distinct code paths (large switch-heavy rewriter) —
              the paper's worst fast-forward rate (99.689%) and the one
              benchmark hurt by the 256 MB cache limit in Figure 12
``compress``  RLE-style compress/decompress byte loops
``li``        stack-based expression-VM interpreter loop
``ijpeg``     blocked 8x8 integer transform over an image
``perl``      string hashing + bucket histogram
``vortex``    linked-record database lookups
``tomcatv``   2D 5-point stencil relaxation (FP analogue, integerized)
``swim``      2D shallow-water-style sweep over three grids
``mgrid``     3-point multilevel smoothing — extremely regular, best
              fast-forward rate (paper: 99.999%)
``fpppp``     huge straight-line dependence chains (largest basic
              blocks in SPEC; best Figure 12 speedup, 23.8x)
``su2cor``    lattice nearest-neighbour coupling (complex-ish ints)
``hydro2d``   coupled-grid flux updates
``applu``     forward/backward triangular sweeps (SSOR)
``turb3d``    butterfly (FFT-style) strided passes
``apsi``      column physics with data-dependent adjustments
``wave5``     particle-in-cell gather/scatter
============  ==========================================================

Every workload is deterministic and self-checking: it writes a checksum
via ``out()``, and ``expected_out`` lets tests verify any simulator
produced the right answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from ..isa.program import Program
from .minic import compile_minic

# Deterministic PRNG used *at generation time* (host side, for data) —
# an LCG so the suite never depends on Python's hash randomization.
_LCG_A = 1103515245
_LCG_C = 12345
_LCG_M = 1 << 31


def _lcg_stream(seed: int):
    x = seed
    while True:
        x = (_LCG_A * x + _LCG_C) % _LCG_M
        yield x


@dataclass(frozen=True)
class Workload:
    name: str
    category: str  # "int" or "fp" (analogue)
    description: str
    source_builder: Callable[[int], str]
    default_scale: int
    test_scale: int

    def source(self, scale: int | None = None) -> str:
        return self.source_builder(scale if scale is not None else self.default_scale)

    def build(self, scale: int | None = None) -> Program:
        return compile_minic(self.source(scale))


def _go(scale: int) -> str:
    rng = _lcg_stream(42)
    board = [next(rng) % 3 for _ in range(361)]
    init = ", ".join(str(v) for v in board)
    return f"""
int board[361] = {{{init}}};
int score;
int rnd;

int next_rnd() {{
    rnd = (rnd * 1103515245 + 12345) & 2147483647;
    return rnd;
}}

int influence(int p) {{
    int s = 0;
    if (p >= 19) {{ if (board[p - 19] == 1) {{ s = s + 3; }} }}
    if (p < 342) {{ if (board[p + 19] == 1) {{ s = s + 3; }} }}
    if (p % 19 != 0) {{ if (board[p - 1] == 2) {{ s = s - 2; }} }}
    if (p % 19 != 18) {{ if (board[p + 1] == 2) {{ s = s - 2; }} }}
    return s;
}}

int main() {{
    int pass;
    rnd = 7;
    score = 0;
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int p;
        for (p = 0; p < 361; p = p + 1) {{
            int v = board[p];
            if (v == 0) {{
                int inf = influence(p);
                if (inf > 2) {{
                    board[p] = 1;
                    score = score + inf;
                }} else {{
                    if (inf < -1) {{
                        board[p] = 2;
                        score = score - 1;
                    }} else {{
                        if ((next_rnd() >> 7) % 13 == 0) {{
                            board[p] = 1 + (next_rnd() % 2);
                        }}
                    }}
                }}
            }} else {{
                if (v == 1) {{
                    if (influence(p) < -3) {{ board[p] = 0; score = score - 2; }}
                }} else {{
                    if (influence(p) > 4) {{ board[p] = 0; score = score + 1; }}
                }}
            }}
        }}
    }}
    out(score & 65535);
    return 0;
}}
"""


def _m88ksim(scale: int) -> str:
    # A little register-machine program: opcodes packed as
    # op*4096 + dst*256 + src*16 + imm.
    # ops: 0=addi 1=add 2=sub 3=beq-back 4=halt-loop-exit 5=load 6=store
    code = [
        (0, 1, 0, 10),  # r1 = r0 + 10      (loop counter)
        (0, 2, 0, 0),  # r2 = 0            (accumulator)
        (0, 3, 0, 1),  # r3 = 1
        (1, 2, 3, 0),  # r2 += r3          <- loop head (pc 3)
        (6, 2, 4, 0),  # mem[r4] = r2
        (5, 5, 4, 0),  # r5 = mem[r4]
        (1, 2, 5, 0),  # r2 += r5 (doubles the accumulator)
        (2, 1, 3, 0),  # r1 -= r3
        (3, 1, 0, 3),  # if r1 != 0 goto 3
        (4, 0, 0, 0),  # exit
    ]
    words = ", ".join(str(op * 4096 + d * 256 + s * 16 + imm) for op, d, s, imm in code)
    return f"""
int code[{len(code)}] = {{{words}}};
int regs[16];
int dmem[16];
int total;

int run_once() {{
    int pc = 0;
    int steps = 0;
    int r;
    for (r = 0; r < 16; r = r + 1) {{ regs[r] = 0; }}
    while (steps < 4000) {{
        int insn = code[pc];
        int op = insn >> 12;
        int dst = (insn >> 8) & 15;
        int src = (insn >> 4) & 15;
        int imm = insn & 15;
        pc = pc + 1;
        steps = steps + 1;
        if (op == 0) {{ regs[dst] = regs[src] + imm; }}
        else {{ if (op == 1) {{ regs[dst] = regs[dst] + regs[src]; }}
        else {{ if (op == 2) {{ regs[dst] = regs[dst] - regs[src]; }}
        else {{ if (op == 3) {{ if (regs[dst] != 0) {{ pc = imm; }} }}
        else {{ if (op == 5) {{ regs[dst] = dmem[regs[src] & 15]; }}
        else {{ if (op == 6) {{ dmem[regs[src] & 15] = regs[dst]; }}
        else {{ return regs[2]; }} }} }} }} }} }}
    }}
    return regs[2];
}}

int main() {{
    int i;
    total = 0;
    for (i = 0; i < {scale}; i = i + 1) {{
        total = total + run_once();
    }}
    out(total & 65535);
    return 0;
}}
"""


def _gcc(scale: int) -> str:
    # Many distinct "rewrite rules" over a token stream: a wide dispatch
    # with one arm per rule, so many distinct code paths get recorded.
    rng = _lcg_stream(99)
    tokens = [next(rng) % 24 for _ in range(512)]
    init = ", ".join(str(t) for t in tokens)
    arms = []
    for k in range(24):
        arms.append(
            f"if (t == {k}) {{ acc = acc + ((x << {k % 7}) ^ {k * 2654435761 % 4096}); "
            f"x = (x + {k * 13 + 1}) & 1023; }}"
        )
    dispatch = "\n            ".join(arms)
    return f"""
int stream[512] = {{{init}}};
int acc;

int main() {{
    int pass;
    int x = 1;
    acc = 0;
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int i;
        for (i = 0; i < 512; i = i + 1) {{
            int t = (stream[i] + pass) % 24;
            {dispatch}
        }}
    }}
    out(acc & 65535);
    return 0;
}}
"""


def _compress(scale: int) -> str:
    rng = _lcg_stream(5)
    data = []
    value = next(rng) % 7
    for _ in range(256):
        if next(rng) % 4 == 0:
            value = next(rng) % 7
        data.append(value)
    init = ", ".join(str(v) for v in data)
    return f"""
int input[256] = {{{init}}};
int packed[512];
int unpacked[256];

int compress_pass() {{
    int n = 0;
    int i = 0;
    while (i < 256) {{
        int v = input[i];
        int run = 1;
        while ((i + run < 256) && (input[i + run] == v)) {{
            run = run + 1;
        }}
        packed[n] = v;
        packed[n + 1] = run;
        n = n + 2;
        i = i + run;
    }}
    return n;
}}

int expand(int n) {{
    int j = 0;
    int k;
    for (k = 0; k < n; k = k + 2) {{
        int v = packed[k];
        int run = packed[k + 1];
        int r;
        for (r = 0; r < run; r = r + 1) {{
            unpacked[j] = v;
            j = j + 1;
        }}
    }}
    return j;
}}

int main() {{
    int pass;
    int check = 0;
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int n = compress_pass();
        int m = expand(n);
        check = check + n + m;
        input[pass % 256] = (input[pass % 256] + 1) % 7;
    }}
    out(check & 65535);
    return 0;
}}
"""


def _li(scale: int) -> str:
    # A stack VM evaluating a fixed expression program repeatedly.
    # ops: 0 push-imm, 1 add, 2 mul, 3 sub, 4 dup, 5 swap, 6 done
    prog = [
        (0, 3), (0, 4), (1, 0), (4, 0), (2, 0),  # (3+4)^2 = 49
        (0, 7), (3, 0), (0, 6), (2, 0),  # (49-7)*6 = 252
        (0, 5), (5, 0), (3, 0),  # 5 - 252 ... swapped: 252-5=247
        (6, 0),
    ]
    words = ", ".join(str(op * 256 + arg) for op, arg in prog)
    return f"""
int vmcode[{len(prog)}] = {{{words}}};
int stack[64];

int eval_vm() {{
    int sp = 0;
    int pc = 0;
    while (1) {{
        int insn = vmcode[pc];
        int op = insn >> 8;
        int arg = insn & 255;
        pc = pc + 1;
        if (op == 0) {{ stack[sp] = arg; sp = sp + 1; }}
        else {{ if (op == 1) {{ sp = sp - 1; stack[sp - 1] = stack[sp - 1] + stack[sp]; }}
        else {{ if (op == 2) {{ sp = sp - 1; stack[sp - 1] = stack[sp - 1] * stack[sp]; }}
        else {{ if (op == 3) {{ sp = sp - 1; stack[sp - 1] = stack[sp - 1] - stack[sp]; }}
        else {{ if (op == 4) {{ stack[sp] = stack[sp - 1]; sp = sp + 1; }}
        else {{ if (op == 5) {{ int t = stack[sp - 1]; stack[sp - 1] = stack[sp - 2]; stack[sp - 2] = t; }}
        else {{ return stack[sp - 1]; }} }} }} }} }} }}
    }}
    return 0;
}}

int main() {{
    int i;
    int acc = 0;
    for (i = 0; i < {scale}; i = i + 1) {{
        acc = acc + eval_vm();
    }}
    out(acc & 65535);
    return 0;
}}
"""


def _ijpeg(scale: int) -> str:
    rng = _lcg_stream(31)
    image = [next(rng) % 256 for _ in range(16 * 16)]
    init = ", ".join(str(v) for v in image)
    return f"""
int image[256] = {{{init}}};
int coeff[256];

int transform_block(int bx, int by) {{
    int u;
    int s = 0;
    for (u = 0; u < 8; u = u + 1) {{
        int v;
        for (v = 0; v < 8; v = v + 1) {{
            int x;
            int sum = 0;
            for (x = 0; x < 8; x = x + 1) {{
                int px = image[(by * 8 + u) * 16 + bx * 8 + x];
                sum = sum + px * ((x * v) % 7 + 1);
            }}
            coeff[(by * 8 + u) * 16 + bx * 8 + v] = sum >> 3;
            s = s + (sum & 255);
        }}
    }}
    return s;
}}

int main() {{
    int pass;
    int check = 0;
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int bx;
        for (bx = 0; bx < 2; bx = bx + 1) {{
            int by;
            for (by = 0; by < 2; by = by + 1) {{
                check = check + transform_block(bx, by);
            }}
        }}
        image[pass % 256] = (image[pass % 256] + 1) & 255;
    }}
    out(check & 65535);
    return 0;
}}
"""


def _perl(scale: int) -> str:
    rng = _lcg_stream(17)
    text = [next(rng) % 26 + 97 for _ in range(384)]
    init = ", ".join(str(c) for c in text)
    return f"""
int text[384] = {{{init}}};
int buckets[64];

int hash_span(int start, int len) {{
    int h = 5381;
    int i;
    for (i = 0; i < len; i = i + 1) {{
        h = ((h << 5) + h) ^ text[start + i];
        h = h & 16777215;
    }}
    return h;
}}

int main() {{
    int pass;
    int check = 0;
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int s;
        for (s = 0; s + 8 <= 384; s = s + 8) {{
            int h = hash_span(s, 8);
            int b = h & 63;
            buckets[b] = buckets[b] + 1;
            check = check + (h & 255);
        }}
        text[pass % 384] = ((text[pass % 384] + 1 - 97) % 26) + 97;
    }}
    out(check & 65535);
    out(buckets[5] & 255);
    return 0;
}}
"""


def _vortex(scale: int) -> str:
    # Linked records in a flat array: [key, value, next_index] triples.
    rng = _lcg_stream(61)
    n = 64
    order = list(range(n))
    # Shuffle deterministically to make traversal pointer-chase-y.
    for i in range(n - 1, 0, -1):
        j = next(rng) % (i + 1)
        order[i], order[j] = order[j], order[i]
    records = [0] * (3 * n)
    for pos, key in enumerate(order):
        records[3 * pos] = key * 7 + 3
        records[3 * pos + 1] = key * key % 1000
        records[3 * pos + 2] = 3 * (pos + 1) if pos + 1 < n else -1
    init = ", ".join(str(v) for v in records)
    return f"""
int db[{3 * n}] = {{{init}}};
int hits;

int lookup(int key) {{
    int p = 0;
    while (p >= 0) {{
        if (db[p] == key) {{ return db[p + 1]; }}
        p = db[p + 2];
    }}
    return 0 - 1;
}}

int main() {{
    int pass;
    int check = 0;
    hits = 0;
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int q;
        for (q = 0; q < {n}; q = q + 4) {{
            int v = lookup(q * 7 + 3);
            if (v >= 0) {{ hits = hits + 1; }}
            check = check + v;
        }}
    }}
    out(check & 65535);
    out(hits & 65535);
    return 0;
}}
"""


def _tomcatv(scale: int) -> str:
    return f"""
int grid[400];
int work[400];

int main() {{
    int i;
    int pass;
    int check = 0;
    for (i = 0; i < 400; i = i + 1) {{
        grid[i] = (i * 37) & 1023;
    }}
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int r;
        for (r = 1; r < 19; r = r + 1) {{
            int c;
            for (c = 1; c < 19; c = c + 1) {{
                int idx = r * 20 + c;
                work[idx] = (grid[idx - 1] + grid[idx + 1]
                           + grid[idx - 20] + grid[idx + 20]
                           + grid[idx] * 4) >> 3;
            }}
        }}
        for (r = 1; r < 19; r = r + 1) {{
            int c;
            for (c = 1; c < 19; c = c + 1) {{
                int idx = r * 20 + c;
                grid[idx] = work[idx];
            }}
        }}
        check = check + grid[pass % 400];
    }}
    out(check & 65535);
    return 0;
}}
"""


def _swim(scale: int) -> str:
    return f"""
int u[256];
int v[256];
int p[256];

int main() {{
    int i;
    int pass;
    int check = 0;
    for (i = 0; i < 256; i = i + 1) {{
        u[i] = (i * 13) & 255;
        v[i] = (i * 29) & 255;
        p[i] = (i * 7) & 255;
    }}
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int r;
        for (r = 1; r < 15; r = r + 1) {{
            int c;
            for (c = 1; c < 15; c = c + 1) {{
                int idx = r * 16 + c;
                int du = u[idx + 1] - u[idx - 1];
                int dv = v[idx + 16] - v[idx - 16];
                p[idx] = (p[idx] + ((du + dv) >> 2)) & 262143;
                u[idx] = (u[idx] + (p[idx + 1] - p[idx - 1])) & 262143;
                v[idx] = (v[idx] + (p[idx + 16] - p[idx - 16])) & 262143;
            }}
        }}
        check = (check + p[17] + u[18] + v[19]) & 16777215;
    }}
    out(check & 65535);
    return 0;
}}
"""


def _mgrid(scale: int) -> str:
    return f"""
int fine[512];
int coarse[256];

int smooth(int n, int passes) {{
    int pss;
    int total = 0;
    for (pss = 0; pss < passes; pss = pss + 1) {{
        int i;
        for (i = 1; i + 1 < n; i = i + 1) {{
            fine[i] = (fine[i - 1] + fine[i] * 2 + fine[i + 1]) >> 2;
        }}
        total = total + fine[n >> 1];
    }}
    return total;
}}

int main() {{
    int i;
    int pass;
    int check = 0;
    for (i = 0; i < 512; i = i + 1) {{ fine[i] = (i * 97) & 4095; }}
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        check = check + smooth(512, 2);
        for (i = 0; i < 256; i = i + 1) {{
            coarse[i] = (fine[2 * i] + fine[2 * i + 1]) >> 1;
        }}
        for (i = 0; i < 256; i = i + 1) {{
            fine[2 * i] = coarse[i];
            fine[2 * i + 1] = coarse[i];
        }}
    }}
    out(check & 65535);
    return 0;
}}
"""


def _su2cor(scale: int) -> str:
    # Quantum-physics lattice: complex-ish arithmetic (pairs of ints)
    # over a 1D lattice with nearest-neighbour coupling.
    return f"""
int re[128];
int im[128];

int main() {{
    int i;
    int pass;
    int check = 0;
    for (i = 0; i < 128; i = i + 1) {{
        re[i] = (i * 17) & 255;
        im[i] = (i * 23) & 255;
    }}
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        for (i = 1; i < 127; i = i + 1) {{
            int ar = re[i];
            int ai = im[i];
            int br = re[i - 1] + re[i + 1];
            int bi = im[i - 1] + im[i + 1];
            // (a * b) for "complex" ints, scaled down.
            re[i] = (ar * br - ai * bi) >> 8;
            im[i] = (ar * bi + ai * br) >> 8;
            re[i] = re[i] & 65535;
            im[i] = im[i] & 65535;
        }}
        check = (check + re[64] + im[32]) & 16777215;
    }}
    out(check & 65535);
    return 0;
}}
"""


def _hydro2d(scale: int) -> str:
    # Hydrodynamical Navier-Stokes-style update: two coupled grids with
    # flux terms.
    return f"""
int rho[324];
int mom[324];

int main() {{
    int i;
    int pass;
    int check = 0;
    for (i = 0; i < 324; i = i + 1) {{
        rho[i] = 100 + ((i * 31) & 63);
        mom[i] = (i * 11) & 127;
    }}
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int r;
        for (r = 1; r < 17; r = r + 1) {{
            int c;
            for (c = 1; c < 17; c = c + 1) {{
                int idx = r * 18 + c;
                int flux = (mom[idx + 1] - mom[idx - 1]
                          + mom[idx + 18] - mom[idx - 18]) >> 2;
                rho[idx] = (rho[idx] - flux) & 1048575;
                mom[idx] = (mom[idx] + ((rho[idx + 1] - rho[idx - 1]) >> 1)) & 1048575;
            }}
        }}
        check = (check + rho[35] + mom[290]) & 16777215;
    }}
    out(check & 65535);
    return 0;
}}
"""


def _applu(scale: int) -> str:
    # SSOR-style lower/upper triangular sweeps over a grid (applu's
    # signature access pattern: forward then backward substitution).
    return f"""
int grid[256];

int main() {{
    int i;
    int pass;
    int check = 0;
    for (i = 0; i < 256; i = i + 1) {{ grid[i] = (i * 41) & 511; }}
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        // Forward sweep.
        for (i = 17; i < 239; i = i + 1) {{
            grid[i] = (grid[i] + ((grid[i - 1] + grid[i - 16]) >> 1)) & 1048575;
        }}
        // Backward sweep.
        for (i = 238; i > 16; i = i - 1) {{
            grid[i] = (grid[i] + ((grid[i + 1] + grid[i + 16]) >> 1)) & 1048575;
        }}
        check = (check + grid[128]) & 16777215;
    }}
    out(check & 65535);
    return 0;
}}
"""


def _turb3d(scale: int) -> str:
    # Turbulence FFT-flavoured butterfly passes over a power-of-two
    # array: strided accesses with log-levels, turb3d's inner shape.
    return f"""
int data[256];

int main() {{
    int i;
    int pass;
    int check = 0;
    for (i = 0; i < 256; i = i + 1) {{ data[i] = (i * 73) & 1023; }}
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int span = 1;
        while (span < 256) {{
            int base = 0;
            while (base < 256) {{
                int k;
                for (k = 0; k < span; k = k + 1) {{
                    int a = data[base + k];
                    int b = data[base + k + span];
                    data[base + k] = (a + b) & 1048575;
                    data[base + k + span] = (a - b) & 1048575;
                }}
                base = base + span * 2;
            }}
            span = span * 2;
        }}
        check = (check + data[pass % 256]) & 16777215;
    }}
    out(check & 65535);
    return 0;
}}
"""


def _apsi(scale: int) -> str:
    # Mesoscale weather: vertical column physics — per-column loops with
    # conditionals on layer state (apsi mixes regular loops with data
    # dependent branches).
    return f"""
int temp[200];
int moist[200];

int main() {{
    int i;
    int pass;
    int check = 0;
    for (i = 0; i < 200; i = i + 1) {{
        temp[i] = 250 + ((i * 7) % 60);
        moist[i] = (i * 13) % 100;
    }}
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        int col;
        for (col = 0; col < 10; col = col + 1) {{
            int lev;
            for (lev = 1; lev < 20; lev = lev + 1) {{
                int idx = col * 20 + lev;
                int below = temp[idx - 1];
                if (temp[idx] > below + 2) {{
                    // Convective adjustment.
                    int avg = (temp[idx] + below) >> 1;
                    temp[idx] = avg;
                    temp[idx - 1] = avg;
                    moist[idx] = (moist[idx] + moist[idx - 1]) >> 1;
                }} else {{
                    temp[idx] = (temp[idx] * 15 + below) >> 4;
                }}
                if (moist[idx] > 90) {{
                    moist[idx] = moist[idx] - 30;  // rain out
                    check = check + 1;
                }}
                moist[idx] = (moist[idx] + 3) % 101;
            }}
        }}
        check = (check + temp[55] + moist[155]) & 16777215;
    }}
    out(check & 65535);
    return 0;
}}
"""


def _wave5(scale: int) -> str:
    # Particle-in-cell plasma: particles pushed through a field grid
    # (gather-scatter with computed indices, wave5's signature).
    rng = _lcg_stream(77)
    positions = [next(rng) % 1280 for _ in range(96)]
    init = ", ".join(str(p) for p in positions)
    return f"""
int pos[96] = {{{init}}};
int vel[96];
int field[128];

int main() {{
    int i;
    int pass;
    int check = 0;
    for (i = 0; i < 128; i = i + 1) {{ field[i] = ((i * 19) & 63) - 32; }}
    for (i = 0; i < 96; i = i + 1) {{ vel[i] = (i & 7) - 3; }}
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
        // Push particles (gather field at particle cell).
        for (i = 0; i < 96; i = i + 1) {{
            int cell = (pos[i] >> 4) & 127;
            vel[i] = vel[i] + field[cell];
            if (vel[i] > 15) {{ vel[i] = 15; }}
            if (vel[i] < 0 - 15) {{ vel[i] = 0 - 15; }}
            pos[i] = (pos[i] + vel[i] + 2048) % 2048;
        }}
        // Deposit charge (scatter back onto the grid).
        for (i = 0; i < 128; i = i + 1) {{ field[i] = field[i] >> 1; }}
        for (i = 0; i < 96; i = i + 1) {{
            int cell = (pos[i] >> 4) & 127;
            field[cell] = field[cell] + 1;
        }}
        check = (check + pos[5] + vel[50] + field[64]) & 16777215;
    }}
    out(check & 65535);
    return 0;
}}
"""


def _fpppp(scale: int) -> str:
    # Long straight-line dependence chains, the SPEC benchmark famous
    # for enormous basic blocks.  Generate a big unrolled polynomial
    # pipeline with no inner control flow.
    steps = []
    for k in range(48):
        steps.append(f"        a = (a * 3 + b + {k}) & 1048575;")
        steps.append(f"        b = (b * 5 + c - {k % 7}) & 1048575;")
        steps.append(f"        c = (c * 7 + a + {k % 11}) & 1048575;")
    body = "\n".join(steps)
    return f"""
int main() {{
    int pass;
    int a = 1;
    int b = 2;
    int c = 3;
    for (pass = 0; pass < {scale}; pass = pass + 1) {{
{body}
    }}
    out((a + b + c) & 65535);
    return 0;
}}
"""


WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in [
        Workload("go", "int", "irregular board-scan branching", _go, 2, 1),
        Workload("m88ksim", "int", "register-machine interpreter", _m88ksim, 16, 1),
        Workload("gcc", "int", "wide multi-rule dispatch", _gcc, 1, 1),
        Workload("compress", "int", "RLE compress/expand loops", _compress, 6, 2),
        Workload("li", "int", "stack-VM interpreter", _li, 150, 4),
        Workload("ijpeg", "int", "blocked 8x8 integer transform", _ijpeg, 1, 1),
        Workload("perl", "int", "string hashing + histogram", _perl, 6, 1),
        Workload("vortex", "int", "linked-record database lookups", _vortex, 7, 1),
        Workload("tomcatv", "fp", "2D 5-point stencil relaxation", _tomcatv, 3, 1),
        Workload("swim", "fp", "shallow-water-style grid sweep", _swim, 4, 1),
        Workload("su2cor", "fp", "lattice nearest-neighbour coupling", _su2cor, 12, 1),
        Workload("hydro2d", "fp", "coupled-grid flux updates", _hydro2d, 5, 1),
        Workload("mgrid", "fp", "multilevel 3-point smoothing", _mgrid, 2, 1),
        Workload("applu", "fp", "forward/backward triangular sweeps", _applu, 7, 1),
        Workload("turb3d", "fp", "butterfly (FFT-style) passes", _turb3d, 2, 1),
        Workload("apsi", "fp", "column physics with adjustments", _apsi, 8, 1),
        Workload("fpppp", "fp", "huge straight-line blocks", _fpppp, 40, 2),
        Workload("wave5", "fp", "particle-in-cell gather/scatter", _wave5, 10, 1),
    ]
}

INTEGER_WORKLOADS = [w for w in WORKLOADS.values() if w.category == "int"]
FP_WORKLOADS = [w for w in WORKLOADS.values() if w.category == "fp"]


@lru_cache(maxsize=64)
def build_cached(name: str, scale: int | None = None) -> Program:
    """Build (and cache) a workload Program."""
    return WORKLOADS[name].build(scale)


@lru_cache(maxsize=64)
def expected_out(name: str, scale: int | None = None) -> tuple[int, ...]:
    """Golden out() values computed with the functional simulator."""
    from ..isa.funcsim import FunctionalSim
    from .minic import read_out_buffer

    sim = FunctionalSim.for_program(build_cached(name, scale))
    sim.run(200_000_000)
    if not sim.halted:
        raise RuntimeError(f"workload {name} did not halt")
    return tuple(read_out_buffer(sim.mem))
