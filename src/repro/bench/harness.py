"""Measurement harness shared by the benchmark suite.

Runs a workload on one of the five simulator configurations the paper's
evaluation compares and returns a :class:`Measurement` with wall-clock
time, simulated instruction/cycle counts, fast-forward statistics, and
memoized-data accounting — everything Figures 11/12 and Tables 1/2 need.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..isa.program import Program
from ..ooo.common import MachineConfig
from ..ooo.facile_ooo import run_facile_ooo
from ..ooo.fastsim import run_fastsim
from ..ooo.reference import run_reference

#: Simulator configurations, named as the paper's figures use them.
SIMULATORS = (
    "simplescalar",  # conventional reference (Figures 11 & 12 baseline)
    "fastsim",  # hand-coded memoizing (Figure 11 "with memoization")
    "fastsim-nomemo",  # hand-coded, memoization disabled (Figure 11)
    "facile",  # compiled fast-forwarding simulator (Figure 12)
    "facile-nomemo",  # compiled, slow engine only (Figure 12)
)


@dataclass
class Measurement:
    workload: str
    simulator: str
    seconds: float
    retired: int
    cycles: int
    # Fast-forwarding statistics (zero for non-memoizing simulators).
    retired_fast: int = 0
    steps_fast: int = 0
    steps_slow: int = 0
    steps_recovered: int = 0
    #: Cumulative bytes of memoized data recorded over the whole run —
    #: the paper's Table 2 metric.  Reported identically for the
    #: hand-coded and compiled simulators (both cumulative), so the
    #: table compares like with like; ``memo_bytes_current`` is the
    #: resident accounted size at run end for anyone who wants it.
    memo_bytes: int = 0
    memo_bytes_current: int = 0
    memo_bytes_cumulative: int = 0
    memo_clears: int = 0
    memo_evictions: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def kips(self) -> float:
        """Simulated instructions per host second (the paper's y-axis),
        in thousands."""
        return self.retired / self.seconds / 1000 if self.seconds else 0.0

    @property
    def fast_fraction(self) -> float:
        """Fraction of instructions simulated by the fast engine
        (Table 1's metric)."""
        return self.retired_fast / self.retired if self.retired else 0.0


def measure(
    simulator: str,
    program: Program,
    workload_name: str = "?",
    config: MachineConfig | None = None,
    cache_limit_bytes: int | None = None,
    cache_evict: str = "clear",
    max_cycles: int = 200_000_000,
    trace_jit: bool = True,
    flat_pack: bool = True,
    cache_dir=None,
    cache_load=None,
    cache_save=None,
    replay_backend: str = "python",
) -> Measurement:
    """Run `program` to completion on the named simulator configuration.

    ``cache_dir``/``cache_load``/``cache_save`` wire the memoizing
    configurations to the snapshot store (warm starts); snapshot load
    time counts against the measured wall clock."""
    start = time.perf_counter()
    if simulator == "simplescalar":
        sim = run_reference(program, config, max_cycles=max_cycles)
        elapsed = time.perf_counter() - start
        return Measurement(
            workload_name, simulator, elapsed, sim.stats.retired, sim.stats.cycles
        )
    if simulator in ("fastsim", "fastsim-nomemo"):
        memoize = simulator == "fastsim"
        sim = run_fastsim(
            program,
            config,
            memoize=memoize,
            max_cycles=max_cycles,
            memo_limit_bytes=cache_limit_bytes,
            memo_evict=cache_evict,
            flat_pack=flat_pack,
            cache_dir=cache_dir,
            cache_load=cache_load,
            cache_save=cache_save,
            replay_backend=replay_backend,
        )
        elapsed = time.perf_counter() - start
        extra = {}
        if memoize:
            extra = {
                "packs": sim.mstats.packs,
                "unpacks": sim.mstats.unpacks,
                "pool_bytes_saved": sim.pool.bytes_saved,
                "bytes_shared": sim.mstats.bytes_shared,
            }
            _snapshot_extra(extra, sim)
            _backend_extra(extra, sim)
        return Measurement(
            workload_name,
            simulator,
            elapsed,
            sim.stats.retired,
            sim.stats.cycles,
            retired_fast=sim.retired_fast,
            steps_fast=sim.mstats.cycles_fast,
            steps_slow=sim.mstats.cycles_slow,
            steps_recovered=sim.mstats.cycles_recovered,
            memo_bytes=sim.mstats.bytes_cumulative,
            memo_bytes_current=sim.mstats.bytes_estimate,
            memo_bytes_cumulative=sim.mstats.bytes_cumulative,
            memo_clears=sim.mstats.clears,
            memo_evictions=sim.mstats.evictions,
            extra=extra,
        )
    if simulator in ("facile", "facile-nomemo"):
        memoized = simulator == "facile"
        run = run_facile_ooo(
            program,
            config,
            memoized=memoized,
            max_steps=max_cycles,
            cache_limit_bytes=cache_limit_bytes,
            cache_evict=cache_evict,
            trace_jit=trace_jit,
            flat_pack=flat_pack,
            cache_dir=cache_dir,
            cache_load=cache_load,
            cache_save=cache_save,
            replay_backend=replay_backend,
        )
        elapsed = time.perf_counter() - start
        if memoized:
            cache = run.engine.cache
            cache_stats = cache.stats
            extra = {
                "bytes_current": cache_stats.bytes_current,
                "packs": cache_stats.packs,
                "unpacks": cache_stats.unpacks,
                "pool_bytes_saved": cache.pool.bytes_saved,
                "bytes_shared": cache_stats.bytes_shared,
            }
            _snapshot_extra(extra, run.engine)
            _backend_extra(extra, run.engine)
            return Measurement(
                workload_name,
                simulator,
                elapsed,
                run.stats.retired,
                run.stats.cycles,
                retired_fast=run.retired_fast,
                steps_fast=run.run_stats.steps_fast,
                steps_slow=run.run_stats.steps_slow,
                steps_recovered=run.run_stats.steps_recovered,
                memo_bytes=cache_stats.bytes_cumulative,
                memo_bytes_current=cache_stats.bytes_current,
                memo_bytes_cumulative=cache_stats.bytes_cumulative,
                memo_clears=cache_stats.clears,
                memo_evictions=cache_stats.evictions,
                extra=extra,
            )
        return Measurement(
            workload_name, simulator, elapsed, run.stats.retired, run.stats.cycles
        )
    raise ValueError(f"unknown simulator {simulator!r}")


def _backend_extra(extra: dict, holder) -> None:
    """Record the active replay backend (and C-kernel readiness time)
    on a measurement's extra dict."""
    bstat = getattr(holder, "backend_status", None)
    if bstat is None:
        return
    extra["replay_backend"] = bstat["active"]
    if bstat["requested"] != bstat["active"]:
        extra["replay_backend_reason"] = bstat["reason"]
    if bstat["active"] == "c":
        extra["ckernel_ms"] = bstat["compile_ms"]
    native = getattr(holder, "_cnative", None)
    counts = getattr(native, "extern_counts", None)
    if counts is not None:
        by_name = counts()
        extra["externs_native"] = sum(c["native"] for c in by_name.values())
        extra["externs_python"] = sum(c["python"] for c in by_name.values())
        extra["externs"] = by_name


def _snapshot_extra(extra: dict, holder) -> None:
    """Record snapshot load/save outcomes on a measurement's extra dict
    (``holder`` is an engine or fastsim instance)."""
    load = getattr(holder, "snapshot_load", None)
    if load is not None:
        extra["snapshot_hit"] = load.hit
        extra["snapshot_entries"] = load.entries
        if not load.hit:
            extra["snapshot_reason"] = load.reason
    save = getattr(holder, "snapshot_save", None)
    if save is not None and save.hit:
        extra["snapshot_saved_bytes"] = save.file_bytes


def harmonic_mean(values: list[float]) -> float:
    """Harmonic mean of the positive values.  Non-positive entries —
    failed or zero cells — cannot enter a harmonic mean, but silently
    dropping them inflates the reported figure; callers that render a
    mean should use :func:`harmonic_mean_coverage` and surface the
    "over K/N cells" coverage instead of pretending all cells counted.
    """
    return harmonic_mean_coverage(values)[0]


def harmonic_mean_coverage(values: list[float]) -> tuple[float, int, int]:
    """``(hmean, used, total)``: the harmonic mean over the positive
    values plus how many of the ``total`` cells actually entered it."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0, 0, len(values)
    return len(vals) / sum(1.0 / v for v in vals), len(vals), len(values)
