"""Paper-style text rendering of benchmark results.

Each function renders one of the paper's exhibits from a list of
:class:`~repro.bench.harness.Measurement` rows, so the benchmarks print
tables directly comparable to the originals.
"""

from __future__ import annotations

from .harness import Measurement, harmonic_mean_coverage


def _by(measurements: list[Measurement]) -> dict[tuple[str, str], Measurement]:
    return {(m.workload, m.simulator): m for m in measurements}


def _workloads(measurements: list[Measurement]) -> list[str]:
    seen: list[str] = []
    for m in measurements:
        if m.workload not in seen:
            seen.append(m.workload)
    return seen


def render_speed_figure(
    measurements: list[Measurement],
    memo_sim: str,
    nomemo_sim: str,
    title: str,
) -> str:
    """Figure 11/12 style: simulated kilo-instructions per host second
    for {with memoization, without, SimpleScalar-like baseline}, plus
    speedup columns and harmonic means."""
    table = _by(measurements)
    lines = [title, "=" * len(title), ""]
    header = (
        f"{'benchmark':<12} {'with memo':>10} {'w/o memo':>10} {'baseline':>10} "
        f"{'memo/base':>10} {'memo/nomemo':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    # Every workload contributes a slot; a missing or failed (zero)
    # cell stays in the list as 0.0 so the hmean coverage below counts
    # it as dropped instead of silently inflating the mean.
    ratios_base: list[float] = []
    ratios_self: list[float] = []
    for w in _workloads(measurements):
        memo = table.get((w, memo_sim))
        nomemo = table.get((w, nomemo_sim))
        base = table.get((w, "simplescalar"))
        if memo is None or nomemo is None or base is None:
            ratios_base.append(0.0)
            ratios_self.append(0.0)
            lines.append(f"{w:<12} {'(missing cell — dropped from hmean)':>56}")
            continue
        r_base = memo.kips / base.kips if base.kips else 0.0
        r_self = memo.kips / nomemo.kips if nomemo.kips else 0.0
        ratios_base.append(r_base)
        ratios_self.append(r_self)
        lines.append(
            f"{w:<12} {memo.kips:>9.1f}k {nomemo.kips:>9.1f}k {base.kips:>9.1f}k "
            f"{r_base:>9.2f}x {r_self:>11.2f}x"
        )
    lines.append("-" * len(header))
    h_base, used_base, total = harmonic_mean_coverage(ratios_base)
    h_self, used_self, _ = harmonic_mean_coverage(ratios_self)
    used = min(used_base, used_self)
    label = "hmean" if used == total else f"hmean {used}/{total}"
    lines.append(
        f"{label:<12} {'':>10} {'':>10} {'':>10} "
        f"{h_base:>9.2f}x {h_self:>11.2f}x"
    )
    if used < total:
        lines.append(
            f"(harmonic means cover {used}/{total} benchmarks; "
            f"{total - used} failed or missing cells were dropped)"
        )
    return "\n".join(lines)


def render_table1(measurements: list[Measurement], simulator: str) -> str:
    """Table 1: percentage of instructions simulated by the fast engine."""
    table = _by(measurements)
    title = "Table 1: Percentage of instructions fast-forwarded"
    lines = [title, "=" * len(title), ""]
    lines.append(f"{'benchmark':<12} {'% fast-fwd':>12} {'steps fast':>12} {'steps slow':>12}")
    for w in _workloads(measurements):
        m = table.get((w, simulator))
        if m is None:
            continue
        lines.append(
            f"{w:<12} {100 * m.fast_fraction:>11.3f}% {m.steps_fast:>12,} {m.steps_slow:>12,}"
        )
    return "\n".join(lines)


def render_table2(measurements: list[Measurement], simulator: str) -> str:
    """Table 2: quantity of memoized data."""
    table = _by(measurements)
    title = "Table 2: Quantity of memoized data"
    lines = [title, "=" * len(title), ""]
    lines.append(f"{'benchmark':<12} {'KB memoized':>14} {'per 1k instrs':>14}")
    for w in _workloads(measurements):
        m = table.get((w, simulator))
        if m is None:
            continue
        per_k = m.memo_bytes / max(1, m.retired) * 1000 / 1024
        lines.append(
            f"{w:<12} {m.memo_bytes / 1024:>13.1f} {per_k:>13.2f}K"
        )
    return "\n".join(lines)


def render_generic(title: str, header: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h) for i, h in enumerate(header)]
    lines = [title, "=" * len(title), ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("-" * (sum(widths) + 2 * (len(header) - 1)))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
