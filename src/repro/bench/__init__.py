"""Benchmark harness: measurement and paper-style table rendering."""

from .harness import SIMULATORS, Measurement, harmonic_mean, measure
from .reporting import render_speed_figure, render_table1, render_table2

__all__ = [
    "Measurement",
    "SIMULATORS",
    "harmonic_mean",
    "measure",
    "render_speed_figure",
    "render_table1",
    "render_table2",
]
