"""Drivers that run SPARC-lite programs on the Facile-generated
functional simulator (memoized or plain) and on the Python golden model.

These are the building blocks the benchmarks and tests share.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..facile import CompilationResult, FastForwardEngine, PlainEngine, compile_source
from .facile_src import functional_sim_source
from .funcsim import FunctionalSim
from .program import Program


@lru_cache(maxsize=None)
def compiled_functional_sim() -> CompilationResult:
    """Compile the Facile functional simulator once per process."""
    return compile_source(functional_sim_source(), name="sparclite-functional")


@dataclass
class FunctionalRun:
    ctx: object
    engine: object
    stats: object
    retired: int
    regs: list[int]
    halted: bool


def _prepare_context(sim, program: Program):
    ctx = sim.make_context()
    program.load_into(ctx.mem)
    ctx.write_global("init", (program.entry, program.entry + 4, 0))
    ctx.read_global("R")[14] = program.stack_top  # %sp
    return ctx


def run_facile_functional(
    program: Program,
    memoized: bool = True,
    max_steps: int = 1_000_000,
    cache_limit_bytes: int | None = None,
    cache_evict: str = "clear",
    trace_jit: bool = True,
    trace_threshold: int = 64,
    flat_pack: bool = True,
    cache_dir=None,
    cache_load=None,
    cache_save=None,
    replay_backend: str = "python",
    profile: bool = False,
) -> FunctionalRun:
    """Run a program to completion on the Facile functional simulator."""
    compiled = compiled_functional_sim().simulator
    ctx = _prepare_context(compiled, program)
    warm = None
    if memoized:
        engine = FastForwardEngine(
            compiled, ctx, cache_limit_bytes=cache_limit_bytes,
            cache_evict=cache_evict,
            trace_jit=trace_jit, trace_threshold=trace_threshold,
            flat_pack=flat_pack, replay_backend=replay_backend,
        )
        if profile:
            engine.profile(True)
        from ..facile.snapshot import engine_fingerprint, warm_start

        warm = warm_start(
            engine, engine_fingerprint(compiled, program),
            cache_dir=cache_dir, cache_load=cache_load, cache_save=cache_save,
        )
    else:
        engine = PlainEngine(compiled, ctx)
    stats = engine.run(max_steps=max_steps)
    if warm is not None:
        warm.finish()
    return FunctionalRun(
        ctx=ctx,
        engine=engine,
        stats=stats,
        retired=ctx.retired_total,
        regs=list(ctx.read_global("R")),
        halted=ctx.halted,
    )


def run_golden(program: Program, max_steps: int = 1_000_000) -> FunctionalSim:
    """Run a program on the Python golden model."""
    sim = FunctionalSim.for_program(program)
    sim.run(max_steps)
    return sim
