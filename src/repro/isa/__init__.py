"""SPARC-lite target ISA: tables, assembler, loader, functional simulator."""

from .assembler import Assembler, AssemblerError, assemble
from .disasm import disassemble, disassemble_program
from .funcsim import FunctionalSim, StepInfo
from .program import Program

__all__ = [
    "Assembler",
    "AssemblerError",
    "FunctionalSim",
    "Program",
    "StepInfo",
    "assemble",
    "disassemble",
    "disassemble_program",
]
