"""Program images for SPARC-lite targets.

A :class:`Program` is the output of the assembler (or the minic
compiler): a text segment of instruction words, a data segment of raw
bytes, an entry point, and a symbol table.  ``load_into`` writes the
image into any object exposing the :class:`repro.facile.runtime.Memory`
interface (both the Facile simulators' contexts and the standalone
Python simulators use it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_TEXT_BASE = 0x0000_1000
DEFAULT_DATA_BASE = 0x0010_0000
DEFAULT_STACK_TOP = 0x007F_FFF0


@dataclass
class Program:
    text_base: int = DEFAULT_TEXT_BASE
    text_words: list[int] = field(default_factory=list)
    data_base: int = DEFAULT_DATA_BASE
    data_bytes: bytearray = field(default_factory=bytearray)
    entry: int = DEFAULT_TEXT_BASE
    symbols: dict[str, int] = field(default_factory=dict)
    stack_top: int = DEFAULT_STACK_TOP

    @property
    def text_end(self) -> int:
        return self.text_base + 4 * len(self.text_words)

    def word_at(self, addr: int) -> int:
        index = (addr - self.text_base) // 4
        return self.text_words[index]

    def load_into(self, mem) -> None:
        """Write the image into a target memory."""
        for i, word in enumerate(self.text_words):
            mem.write32(self.text_base + 4 * i, word)
        if self.data_bytes:
            mem.load_bytes(self.data_base, bytes(self.data_bytes))

    def symbol(self, name: str) -> int:
        return self.symbols[name]
