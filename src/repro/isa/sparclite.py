"""SPARC-lite: the target instruction set for all simulators in this repo.

The paper's simulators model SPARC V8/V9.  SPARC-lite is a faithful
subset of SPARC V8's user-level integer ISA:

* 32 general-purpose registers (``%g0``–``%i7``), with ``%g0`` wired to
  zero and **no register windows** — ``save``/``restore`` assemble to
  plain ``add`` on ``%sp`` (substitution documented in DESIGN.md);
* the three V8 instruction formats (CALL; SETHI/Bicc; arithmetic and
  load/store with register-or-simm13 second operand);
* integer condition codes (NZVC) set by the ``cc`` variants and read by
  all sixteen Bicc conditions, including the annul bit;
* branch **delay slots**, exactly as on real SPARC;
* a ``halt`` instruction (encoded in the Ticc slot) to end simulation.

One table (:data:`INSTRUCTIONS`) drives the assembler, the Python
functional simulator, and the generated Facile description, so the three
cannot drift apart silently — and co-simulation tests check they agree.
"""

from __future__ import annotations

from dataclasses import dataclass

# Register names: %g0-7 -> r0-7, %o0-7 -> r8-15, %l0-7 -> r16-23,
# %i0-7 -> r24-31.  Conventional aliases.
REG_ALIASES = {
    "sp": 14,
    "fp": 30,
    "ra": 15,  # call writes the return address to %o7 == r15
}
NUM_REGS = 32

# Instruction classes for the timing models.
CLS_IALU = 0
CLS_MUL = 1
CLS_DIV = 2
CLS_LOAD = 3
CLS_STORE = 4
CLS_BRANCH = 5
CLS_CALL = 6
CLS_JMPL = 7
CLS_HALT = 8
CLS_SETHI = 9

CLASS_NAMES = {
    CLS_IALU: "ialu",
    CLS_MUL: "mul",
    CLS_DIV: "div",
    CLS_LOAD: "load",
    CLS_STORE: "store",
    CLS_BRANCH: "branch",
    CLS_CALL: "call",
    CLS_JMPL: "jmpl",
    CLS_HALT: "halt",
    CLS_SETHI: "sethi",
}


@dataclass(frozen=True)
class ArithOp:
    """An op=2 (format 3) arithmetic instruction."""

    name: str
    op3: int
    cls: int
    sets_cc: bool = False
    kind: str = "alu"  # alu | shift | jmpl | halt


@dataclass(frozen=True)
class MemOp:
    """An op=3 (format 3) memory instruction."""

    name: str
    op3: int
    cls: int
    width: int  # bytes
    is_store: bool
    signed: bool = False


@dataclass(frozen=True)
class BranchCond:
    name: str
    cond: int


ARITH_OPS: list[ArithOp] = [
    ArithOp("add", 0x00, CLS_IALU),
    ArithOp("and", 0x01, CLS_IALU),
    ArithOp("or", 0x02, CLS_IALU),
    ArithOp("xor", 0x03, CLS_IALU),
    ArithOp("sub", 0x04, CLS_IALU),
    ArithOp("addcc", 0x10, CLS_IALU, sets_cc=True),
    ArithOp("andcc", 0x11, CLS_IALU, sets_cc=True),
    ArithOp("orcc", 0x12, CLS_IALU, sets_cc=True),
    ArithOp("xorcc", 0x13, CLS_IALU, sets_cc=True),
    ArithOp("subcc", 0x14, CLS_IALU, sets_cc=True),
    ArithOp("umul", 0x0A, CLS_MUL),
    ArithOp("udiv", 0x0E, CLS_DIV),
    ArithOp("sll", 0x25, CLS_IALU, kind="shift"),
    ArithOp("srl", 0x26, CLS_IALU, kind="shift"),
    ArithOp("sra", 0x27, CLS_IALU, kind="shift"),
    ArithOp("jmpl", 0x38, CLS_JMPL, kind="jmpl"),
    ArithOp("halt", 0x3A, CLS_HALT, kind="halt"),  # Ticc slot repurposed
]

MEM_OPS: list[MemOp] = [
    MemOp("ld", 0x00, CLS_LOAD, 4, is_store=False),
    MemOp("ldub", 0x01, CLS_LOAD, 1, is_store=False),
    MemOp("lduh", 0x02, CLS_LOAD, 2, is_store=False),
    MemOp("st", 0x04, CLS_STORE, 4, is_store=True),
    MemOp("stb", 0x05, CLS_STORE, 1, is_store=True),
    MemOp("sth", 0x06, CLS_STORE, 2, is_store=True),
]

BRANCH_CONDS: list[BranchCond] = [
    BranchCond("bn", 0b0000),
    BranchCond("be", 0b0001),
    BranchCond("ble", 0b0010),
    BranchCond("bl", 0b0011),
    BranchCond("bleu", 0b0100),
    BranchCond("bcs", 0b0101),
    BranchCond("bneg", 0b0110),
    BranchCond("bvs", 0b0111),
    BranchCond("ba", 0b1000),
    BranchCond("bne", 0b1001),
    BranchCond("bg", 0b1010),
    BranchCond("bge", 0b1011),
    BranchCond("bgu", 0b1100),
    BranchCond("bcc", 0b1101),
    BranchCond("bpos", 0b1110),
    BranchCond("bvc", 0b1111),
]

ARITH_BY_NAME = {op.name: op for op in ARITH_OPS}
MEM_BY_NAME = {op.name: op for op in MEM_OPS}
COND_BY_NAME = {c.name: c for c in BRANCH_CONDS}


# -- encoding helpers -------------------------------------------------------------


def enc_call(disp30: int) -> int:
    return (1 << 30) | (disp30 & 0x3FFFFFFF)


def enc_sethi(rd: int, imm22: int) -> int:
    return (0 << 30) | (rd << 25) | (0b100 << 22) | (imm22 & 0x3FFFFF)


def enc_branch(cond: int, disp22: int, annul: bool = False) -> int:
    return (
        (0 << 30)
        | ((1 if annul else 0) << 29)
        | (cond << 25)
        | (0b010 << 22)
        | (disp22 & 0x3FFFFF)
    )


def enc_arith_reg(op3: int, rd: int, rs1: int, rs2: int) -> int:
    return (2 << 30) | (rd << 25) | (op3 << 19) | (rs1 << 14) | (0 << 13) | rs2


def enc_arith_imm(op3: int, rd: int, rs1: int, simm13: int) -> int:
    return (2 << 30) | (rd << 25) | (op3 << 19) | (rs1 << 14) | (1 << 13) | (simm13 & 0x1FFF)


def enc_mem_reg(op3: int, rd: int, rs1: int, rs2: int) -> int:
    return (3 << 30) | (rd << 25) | (op3 << 19) | (rs1 << 14) | (0 << 13) | rs2


def enc_mem_imm(op3: int, rd: int, rs1: int, simm13: int) -> int:
    return (3 << 30) | (rd << 25) | (op3 << 19) | (rs1 << 14) | (1 << 13) | (simm13 & 0x1FFF)


# -- decoding (shared by the Python simulators) --------------------------------------


@dataclass(frozen=True)
class Decoded:
    """A decoded SPARC-lite instruction."""

    kind: str  # call | sethi | branch | arith | mem | halt | illegal
    cls: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    use_imm: bool = False
    imm: int = 0  # sign-extended simm13, or imm22 for sethi
    op3: int = 0
    cond: int = 0
    annul: bool = False
    disp: int = 0  # byte displacement for call/branch
    name: str = ""


def _sext(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & (1 << (bits - 1)) else value


_ARITH_BY_OP3 = {op.op3: op for op in ARITH_OPS}
_MEM_BY_OP3 = {op.op3: op for op in MEM_OPS}


def decode(word: int) -> Decoded:
    """Reference decoder for SPARC-lite words."""
    op = (word >> 30) & 3
    if op == 1:
        return Decoded(kind="call", cls=CLS_CALL, disp=_sext(word, 30) * 4, name="call")
    if op == 0:
        op2 = (word >> 22) & 7
        rd = (word >> 25) & 31
        if op2 == 0b100:
            return Decoded(kind="sethi", cls=CLS_SETHI, rd=rd, imm=(word & 0x3FFFFF), name="sethi")
        if op2 == 0b010:
            cond = (word >> 25) & 0xF
            annul = bool((word >> 29) & 1)
            return Decoded(
                kind="branch",
                cls=CLS_BRANCH,
                cond=cond,
                annul=annul,
                disp=_sext(word, 22) * 4,
                name=_branch_name(cond),
            )
        return Decoded(kind="illegal", cls=CLS_HALT, name="illegal")
    rd = (word >> 25) & 31
    op3 = (word >> 19) & 0x3F
    rs1 = (word >> 14) & 31
    use_imm = bool((word >> 13) & 1)
    rs2 = word & 31
    imm = _sext(word, 13)
    if op == 2:
        spec = _ARITH_BY_OP3.get(op3)
        if spec is None:
            return Decoded(kind="illegal", cls=CLS_HALT, name="illegal")
        kind = "halt" if spec.kind == "halt" else "arith"
        return Decoded(
            kind=kind,
            cls=spec.cls,
            rd=rd,
            rs1=rs1,
            rs2=rs2,
            use_imm=use_imm,
            imm=imm,
            op3=op3,
            name=spec.name,
        )
    spec_m = _MEM_BY_OP3.get(op3)
    if spec_m is None:
        return Decoded(kind="illegal", cls=CLS_HALT, name="illegal")
    return Decoded(
        kind="mem",
        cls=spec_m.cls,
        rd=rd,
        rs1=rs1,
        rs2=rs2,
        use_imm=use_imm,
        imm=imm,
        op3=op3,
        name=spec_m.name,
    )


def _branch_name(cond: int) -> str:
    for c in BRANCH_CONDS:
        if c.cond == cond:
            return c.name
    return "b?"


def parse_register(text: str) -> int:
    """Parse a register name: %g0-7, %o0-7, %l0-7, %i0-7, %r0-31, %sp, %fp."""
    text = text.lower().lstrip("%")
    if text in REG_ALIASES:
        return REG_ALIASES[text]
    bank = {"g": 0, "o": 8, "l": 16, "i": 24}
    if text and text[0] in bank and text[1:].isdigit():
        n = int(text[1:])
        if 0 <= n <= 7:
            return bank[text[0]] + n
    if text.startswith("r") and text[1:].isdigit():
        n = int(text[1:])
        if 0 <= n < NUM_REGS:
            return n
    raise ValueError(f"bad register name {text!r}")


def register_name(num: int) -> str:
    banks = ["g", "o", "l", "i"]
    return f"%{banks[num // 8]}{num % 8}"
