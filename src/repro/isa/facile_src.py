"""SPARC-lite described in Facile, generated from the ISA tables.

The paper's §3.1 point is that one concise description drives decode and
semantics; here the description itself is derived from
:mod:`repro.isa.sparclite`'s tables, so the assembler, the Python
functional simulator, and the Facile simulators share a single source of
truth.  ``isa_declarations()`` returns the ``token``/``pat``/``sem``
text; ``functional_sim_source()`` appends the paper-style
one-instruction-per-step ``main`` (Figure 6, extended with SPARC delay
slots and annulment).

Semantics conventions used by the generated ``sem`` bodies:

* architectural state: ``R`` (registers, ``R[0]`` kept zero by guarded
  writes), ``CC`` (NZVC nibble), target memory via ``mem_*`` built-ins;
* sequencing state: the step key is ``(pc, npc, annul)``; sems may set
  ``NPC2`` (the nPC after the delay slot) and ``ANNUL2``;
* event tracking for the timing models: ``IS_BR``/``BR_TAKEN``,
  ``IS_MEM``/``MEM_ADDR``/``IS_STORE``, ``IS_HALT`` — all assigned
  defaults by ``main`` before ``?exec`` so they stay run-time static
  where possible.
"""

from __future__ import annotations

from . import sparclite as S

TOKEN_DECL = """
token instruction[32] fields
  op 30:31, rd 25:29, op2 22:24, imm22 0:21,
  a 29:29, cond 25:28, disp22 0:21,
  op3 19:24, rs1 14:18, i 13:13, simm13 0:12, rs2 0:4,
  disp30 0:29;
"""


def _operand_forms(body_imm: str, body_reg: str) -> str:
    """Emit the i==1 / i==0 split so each form keeps its own binding times."""
    return f"  if (i) {{ {body_imm} }} else {{ {body_reg} }}\n"


def _arith_sem(spec: S.ArithOp, halt_builtin: bool = True) -> str:
    name = spec.name
    track = f"  CLS_G = {spec.cls};\n"
    if spec.kind == "halt":
        body = "IS_HALT = 1; " + ("halt(); " if halt_builtin else "")
        return f"sem {name} {{ CLS_G = {spec.cls}; {body}}};\n"
    if spec.kind == "jmpl":
        return (
            f"sem {name} {{\n" + track
            + "  SRC1 = rs1;\n"
            "  if (!i) SRC2 = rs2;\n"
            "  IS_RET = i && (rs1 == 15) && (rd == 0) && (simm13 == 8);\n"
            "  if (rd != 0) { R[rd] = PC; DEST = rd; }\n"
            "  val tv = ((R[rs1] + select(i, simm13?sext(13), R[rs2]))?u32)?verify;\n"
            "  NPC2 = tv;\n"
            "  IS_BR = 1;\n"
            "  BR_TAKEN = 1;\n"
            "};\n"
        )
    if spec.kind == "shift":
        expr = {
            "sll": "(R[rs1] << ({b} & 31))?u32",
            "srl": "(R[rs1]?u32 >> ({b} & 31))",
            "sra": "(R[rs1]?s32 >> ({b} & 31))?u32",
        }[name]
        body = expr.format(b="select(i, simm13?zext(5), R[rs2])")
        return (
            f"sem {name} {{\n" + track
            + "  SRC1 = rs1;\n"
            "  if (!i) SRC2 = rs2;\n"
            f"  if (rd != 0) {{ R[rd] = {body}; DEST = rd; }}\n"
            "};\n"
        )
    base = name[:-2] if spec.sets_cc else name
    expr = {
        "add": "(R[rs1] + {b})?u32",
        "sub": "(R[rs1] - {b})?u32",
        "and": "R[rs1] & {b}",
        "or": "R[rs1] | {b}",
        "xor": "R[rs1] ^ {b}",
        "umul": "umul32(R[rs1], {b})",
        "udiv": "udiv32(R[rs1], {b})",
    }[base]
    # CC must be computed from the *source* operands, so it is emitted
    # before the destination write (rd may alias rs1/rs2).
    cc = ""
    if spec.sets_cc:
        logic_op = {"and": "&", "or": "|", "xor": "^"}.get(base, "&")
        cc_fn = {"add": "cc_add(R[rs1], {b})", "sub": "cc_sub(R[rs1], {b})"}.get(
            base, f"cc_logic(R[rs1] {logic_op} {{b}})"
        )
        cc = f"CC = {cc_fn}; "
    b = "select(i, simm13?sext(13), R[rs2])"
    setcc = "  SETSCC_G = 1;\n" if spec.sets_cc else ""
    cc_line = f"  {cc.format(b=b)}\n" if cc else ""
    return (
        f"sem {name} {{\n" + track
        + "  SRC1 = rs1;\n"
        "  if (!i) SRC2 = rs2;\n"
        + setcc
        + cc_line
        + f"  if (rd != 0) {{ R[rd] = {expr.format(b=b)}; DEST = rd; }}\n"
        "};\n"
    )


def _mem_sem(spec: S.MemOp) -> str:
    read = {4: "mem_read", 2: "mem_read16", 1: "mem_read8"}[spec.width]
    write = {4: "mem_write", 2: "mem_write16", 1: "mem_write8"}[spec.width]
    lines = [f"sem {spec.name} {{", f"  CLS_G = {spec.cls};"]
    lines.append("  SRC1 = rs1;")
    lines.append("  if (!i) SRC2 = rs2;")
    lines.append("  IS_MEM = 1;")
    lines.append(
        "  MEM_ADDR = (R[rs1] + select(i, simm13?sext(13), R[rs2]))?u32;"
    )
    if spec.is_store:
        lines.append("  IS_STORE = 1;")
        lines.append("  SRC3 = rd;")
        lines.append(f"  {write}(MEM_ADDR, R[rd]);")
    else:
        lines.append(f"  if (rd != 0) {{ R[rd] = {read}(MEM_ADDR); DEST = rd; }}")
    lines.append("};")
    return "\n".join(lines) + "\n"


def isa_declarations(halt_builtin: bool = True) -> str:
    """token/fields/pat/sem declarations for the full SPARC-lite ISA.

    ``halt_builtin=False`` makes the ``halt`` sem only raise ``IS_HALT``
    (the out-of-order model must drain its pipeline before stopping the
    engine); the default also calls the ``halt()`` built-in, which is
    what the one-instruction-per-step functional simulator wants.
    """
    parts = [TOKEN_DECL]
    # Patterns.
    parts.append("pat call = op==1;\n")
    parts.append("pat sethi = op==0 && op2==4;\n")
    parts.append("pat bicc = op==0 && op2==2;\n")
    for spec in S.ARITH_OPS:
        parts.append(f"pat {spec.name} = op==2 && op3=={spec.op3:#x};\n")
    for spec in S.MEM_OPS:
        parts.append(f"pat {spec.name} = op==3 && op3=={spec.op3:#x};\n")

    # Tracking / sequencing globals shared by all sems.  The event
    # globals below are written for the host (timing models read them
    # from the context), so the write-only-global lint is silenced.
    parts.append(
        "// fac: disable-file=FAC105\n"
        "val R = array(32){0};\n"
        "val CC = 0;\n"
        "val PC : stream;\n"
        "val NPC2 : stream;\n"
        "val ANNUL2 = 0;\n"
        "val IS_BR = 0;\n"
        "val BR_TAKEN = 0;\n"
        "val IS_MEM = 0;\n"
        "val IS_STORE = 0;\n"
        "val MEM_ADDR = 0;\n"
        "val IS_HALT = 0;\n"
        "val IS_RET = 0;\n"
        "val CLS_G = 0;\n"
        "val DEST = 33;\n"
        "val SRC1 = 33;\n"
        "val SRC2 = 33;\n"
        "val SRC3 = 33;\n"
        "val SETSCC_G = 0;\n"
    )

    # Semantics.
    parts.append(
        "sem call {\n"
        f"  CLS_G = {S.CLS_CALL};\n"
        "  R[15] = PC;\n"
        "  DEST = 15;\n"
        "  NPC2 = PC + disp30?sext(30) * 4;\n"
        "  IS_BR = 1;\n"
        "  BR_TAKEN = 1;\n"
        "};\n"
    )
    parts.append(
        "sem sethi {\n"
        f"  CLS_G = {S.CLS_SETHI};\n"
        "  if (rd != 0) { R[rd] = (imm22 << 10)?u32; DEST = rd; }\n"
        "};\n"
    )
    parts.append(
        "sem bicc {\n"
        f"  CLS_G = {S.CLS_BRANCH};\n"
        "  SRC1 = 32;\n"
        "  val tk = cc_branch_taken(cond, CC)?verify;\n"
        "  IS_BR = 1;\n"
        "  BR_TAKEN = tk;\n"
        "  if (tk) {\n"
        "    NPC2 = PC + disp22?sext(22) * 4;\n"
        "    if (a && cond == 8) ANNUL2 = 1;\n"
        "  } else {\n"
        "    if (a) ANNUL2 = 1;\n"
        "  }\n"
        "};\n"
    )
    for spec in S.ARITH_OPS:
        parts.append(_arith_sem(spec, halt_builtin=halt_builtin))
    for spec in S.MEM_OPS:
        parts.append(_mem_sem(spec))
    return "".join(parts)


FUNCTIONAL_MAIN = """
val init;

fun main(pc, npc, annul) {
  PC = pc;
  NPC2 = npc + 4;
  ANNUL2 = 0;
  IS_BR = 0;
  BR_TAKEN = 0;
  IS_MEM = 0;
  IS_STORE = 0;
  IS_HALT = 0;
  IS_RET = 0;
  CLS_G = 0;
  DEST = 33;
  SRC1 = 33;
  SRC2 = 33;
  SRC3 = 33;
  SETSCC_G = 0;
  if (annul) {
    // Annulled delay slot: the instruction is fetched but not executed.
  } else {
    PC?exec();
    stat_retire(1);
  }
  init = (npc, NPC2, ANNUL2);
}
"""


def functional_sim_source() -> str:
    """Complete Facile source for the functional SPARC-lite simulator.

    This is the repo's analogue of the paper's 703-line functional
    simulator: one instruction per step, keyed by (pc, npc, annul).
    """
    return isa_declarations() + FUNCTIONAL_MAIN
