"""SPARC-lite disassembler.

Renders instruction words back to the assembler's syntax; the test
suite round-trips random encodings through
``assemble(disassemble(word)) == word``, which pins the encoder and
decoder against each other.  Used by the CLI's ``asm --disasm`` listing
and handy when debugging generated workloads.
"""

from __future__ import annotations

from . import sparclite as S


def disassemble(word: int, pc: int = 0) -> str:
    """One instruction word -> assembly text (labels become absolute
    hex addresses, resolved relative to `pc`)."""
    d = S.decode(word)
    if d.kind == "call":
        return f"call {pc + d.disp:#x}"
    if d.kind == "sethi":
        if word == S.enc_sethi(0, 0):
            return "nop"
        return f"sethi {d.imm:#x}, {S.register_name(d.rd)}"
    if d.kind == "branch":
        suffix = ",a" if d.annul else ""
        return f"{d.name}{suffix} {pc + d.disp:#x}"
    if d.kind == "halt":
        return "halt"
    if d.kind == "illegal":
        return f".word {word:#010x}"
    if d.kind == "arith":
        return _arith(d)
    if d.kind == "mem":
        return _mem(d)
    raise AssertionError(d.kind)


def _operand2(d: S.Decoded) -> str:
    return str(d.imm) if d.use_imm else S.register_name(d.rs2)


def _arith(d: S.Decoded) -> str:
    if d.name == "jmpl":
        if d.use_imm and d.rs1 == 15 and d.imm == 8 and d.rd == 0:
            return "ret"
        if d.use_imm and d.imm == 0:
            return f"jmpl {S.register_name(d.rs1)}, {S.register_name(d.rd)}"
        base = S.register_name(d.rs1)
        return f"jmpl {base} + {_operand2(d)}, {S.register_name(d.rd)}"
    return (
        f"{d.name} {S.register_name(d.rs1)}, {_operand2(d)}, {S.register_name(d.rd)}"
    )


def _mem(d: S.Decoded) -> str:
    spec = S.MEM_BY_NAME[d.name]
    if d.use_imm:
        if d.imm == 0:
            address = f"[{S.register_name(d.rs1)}]"
        else:
            sign = "+" if d.imm >= 0 else "-"
            address = f"[{S.register_name(d.rs1)} {sign} {abs(d.imm)}]"
    else:
        address = f"[{S.register_name(d.rs1)} + {S.register_name(d.rs2)}]"
    if spec.is_store:
        return f"{d.name} {S.register_name(d.rd)}, {address}"
    return f"{d.name} {address}, {S.register_name(d.rd)}"


def disassemble_program(program, with_labels: bool = True) -> str:
    """Disassemble a whole Program's text segment."""
    by_addr: dict[int, list[str]] = {}
    if with_labels:
        for name, addr in program.symbols.items():
            by_addr.setdefault(addr, []).append(name)
    lines = []
    for i, word in enumerate(program.text_words):
        addr = program.text_base + 4 * i
        for label in by_addr.get(addr, []):
            lines.append(f"{label}:")
        lines.append(f"    {addr:#010x}:  {word:08x}  {disassemble(word, addr)}")
    return "\n".join(lines)
