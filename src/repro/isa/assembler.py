"""A two-pass assembler for SPARC-lite.

Accepts conventional SPARC assembly syntax for the supported subset:

.. code-block:: asm

        .text
    start:
        set     100, %o0
    loop:
        subcc   %o0, 1, %o0
        bne     loop
        nop                     ! delay slot
        halt
        .data
    buf:
        .word   1, 2, 3
        .space  64

Supported directives: ``.text``, ``.data``, ``.org ADDR``, ``.word``,
``.byte``, ``.space N``, ``.align N``.  Comments start with ``!`` or
``#`` or ``;``.

Pseudo-instructions: ``set imm, %rd`` (sethi+or as needed), ``mov``,
``cmp``, ``tst``, ``nop``, ``b label`` (== ``ba``), ``ret`` (==
``jmpl %o7 + 8, %g0``), ``clr %rd``, ``inc``/``dec``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from . import sparclite as S
from .program import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, Program


class AssemblerError(Exception):
    def __init__(self, message: str, line_no: int | None = None):
        where = f"line {line_no}: " if line_no is not None else ""
        super().__init__(where + message)
        self.line_no = line_no


@dataclass
class _Item:
    """One pending instruction or data item from pass one."""

    section: str
    addr: int
    mnemonic: str
    operands: list[str]
    line_no: int


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_HI_RE = re.compile(r"^%hi\((.+)\)$")
_LO_RE = re.compile(r"^%lo\((.+)\)$")


class Assembler:
    def __init__(self, text_base: int = DEFAULT_TEXT_BASE, data_base: int = DEFAULT_DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, source: str) -> Program:
        items, symbols, text_size, data_size = self._pass_one(source)
        program = Program(
            text_base=self.text_base,
            data_base=self.data_base,
            symbols=symbols,
            entry=symbols.get("start", self.text_base),
        )
        program.text_words = [0] * (text_size // 4)
        program.data_bytes = bytearray(data_size)
        self._pass_two(items, symbols, program)
        return program

    # -- pass one: layout and symbol collection --------------------------------

    def _pass_one(self, source: str):
        symbols: dict[str, int] = {}
        items: list[_Item] = []
        section = "text"
        pc = {"text": self.text_base, "data": self.data_base}
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw).strip()
            while True:
                m = _LABEL_RE.match(line)
                if not m:
                    break
                label = m.group(1)
                if label in symbols:
                    raise AssemblerError(f"duplicate label {label!r}", line_no)
                symbols[label] = pc[section]
                line = line[m.end():].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []
            if mnemonic.startswith("."):
                pc[section] = self._directive_size(
                    mnemonic, operands, section, pc, items, line_no
                )
                if mnemonic == ".text":
                    section = "text"
                elif mnemonic == ".data":
                    section = "data"
                continue
            item = _Item(section, pc[section], mnemonic, operands, line_no)
            items.append(item)
            pc[section] += self._instr_size(item)
        text_size = pc["text"] - self.text_base
        data_size = pc["data"] - self.data_base
        return items, symbols, text_size, data_size

    def _directive_size(self, mnemonic, operands, section, pc, items, line_no) -> int:
        addr = pc[section]
        if mnemonic in (".text", ".data"):
            return addr
        if mnemonic == ".org":
            target = int(operands[0], 0)
            if target < addr:
                raise AssemblerError(".org cannot move backwards", line_no)
            if section == "text" and (target - self.text_base) % 4:
                raise AssemblerError(".org must stay word aligned in .text", line_no)
            # Represent the gap with padding items so pass two can skip it.
            items.append(_Item(section, addr, ".pad", [str(target - addr)], line_no))
            return target
        if mnemonic == ".word":
            items.append(_Item(section, addr, ".word", operands, line_no))
            return addr + 4 * len(operands)
        if mnemonic == ".byte":
            items.append(_Item(section, addr, ".byte", operands, line_no))
            return addr + len(operands)
        if mnemonic == ".space":
            n = int(operands[0], 0)
            items.append(_Item(section, addr, ".pad", [str(n)], line_no))
            return addr + n
        if mnemonic == ".align":
            n = int(operands[0], 0)
            new = (addr + n - 1) // n * n
            items.append(_Item(section, addr, ".pad", [str(new - addr)], line_no))
            return new
        raise AssemblerError(f"unknown directive {mnemonic!r}", line_no)

    def _instr_size(self, item: _Item) -> int:
        if item.section != "text":
            raise AssemblerError("instructions must be in .text", item.line_no)
        if item.mnemonic == "set":
            # Worst case sethi + or; sized in pass one using the operand
            # when it is a literal, 8 bytes when it is a symbol.
            value = _try_int(item.operands[0])
            if value is not None and -4096 <= value <= 4095:
                return 4
            return 8
        return 4

    # -- pass two: encoding -----------------------------------------------------

    def _pass_two(self, items: list[_Item], symbols: dict[str, int], program: Program) -> None:
        for item in items:
            if item.mnemonic == ".pad":
                continue
            if item.mnemonic == ".word":
                for k, text in enumerate(item.operands):
                    value = self._value(text, symbols, item.line_no) & 0xFFFFFFFF
                    self._store_data_word(program, item.addr + 4 * k, value, item)
                continue
            if item.mnemonic == ".byte":
                for k, text in enumerate(item.operands):
                    value = self._value(text, symbols, item.line_no) & 0xFF
                    self._store_data_byte(program, item.addr + k, value, item)
                continue
            for offset, word in enumerate(self._encode(item, symbols)):
                index = (item.addr + 4 * offset - program.text_base) // 4
                program.text_words[index] = word

    def _store_data_word(self, program: Program, addr: int, value: int, item: _Item) -> None:
        if item.section == "text":
            program.text_words[(addr - program.text_base) // 4] = value
        else:
            off = addr - program.data_base
            program.data_bytes[off : off + 4] = value.to_bytes(4, "little")

    def _store_data_byte(self, program: Program, addr: int, value: int, item: _Item) -> None:
        if item.section == "text":
            raise AssemblerError(".byte not supported in .text", item.line_no)
        program.data_bytes[addr - program.data_base] = value

    def _value(self, text: str, symbols: dict[str, int], line_no: int) -> int:
        text = text.strip()
        m = _HI_RE.match(text)
        if m:
            return (self._value(m.group(1), symbols, line_no) >> 10) & 0x3FFFFF
        m = _LO_RE.match(text)
        if m:
            return self._value(m.group(1), symbols, line_no) & 0x3FF
        value = _try_int(text)
        if value is not None:
            return value
        if text in symbols:
            return symbols[text]
        raise AssemblerError(f"undefined symbol {text!r}", line_no)

    # -- instruction encoding ---------------------------------------------------

    def _encode(self, item: _Item, symbols: dict[str, int]) -> list[int]:
        name = item.mnemonic
        ops = item.operands
        line = item.line_no
        annul = False
        if name.endswith(",a"):
            annul = True
            name = name[:-2]

        # Pseudo-instructions first.
        if name == "nop":
            return [S.enc_sethi(0, 0)]
        if name == "halt":
            return [S.enc_arith_imm(S.ARITH_BY_NAME["halt"].op3, 0, 0, 0)]
        if name == "set":
            return self._encode_set(ops, symbols, line)
        if name == "mov":
            value, rd = self._operand(ops[0], symbols, line), S.parse_register(ops[1])
            return [self._alu("or", 0, value, rd, line)]
        if name == "clr":
            return [S.enc_arith_reg(S.ARITH_BY_NAME["or"].op3, S.parse_register(ops[0]), 0, 0)]
        if name == "cmp":
            a = S.parse_register(ops[0])
            b = self._operand(ops[1], symbols, line)
            return [self._alu("subcc", a, b, 0, line)]
        if name == "tst":
            return [S.enc_arith_reg(S.ARITH_BY_NAME["orcc"].op3, 0, 0, S.parse_register(ops[0]))]
        if name == "inc":
            rd = S.parse_register(ops[-1])
            amount = 1 if len(ops) == 1 else self._value(ops[0], symbols, line)
            return [S.enc_arith_imm(S.ARITH_BY_NAME["add"].op3, rd, rd, amount)]
        if name == "dec":
            rd = S.parse_register(ops[-1])
            amount = 1 if len(ops) == 1 else self._value(ops[0], symbols, line)
            return [S.enc_arith_imm(S.ARITH_BY_NAME["sub"].op3, rd, rd, amount)]
        if name == "ret":
            return [S.enc_arith_imm(S.ARITH_BY_NAME["jmpl"].op3, 0, 15, 8)]
        if name == "b":
            name = "ba"

        if name in S.COND_BY_NAME:
            target = self._value(ops[0], symbols, line)
            disp = (target - item.addr) // 4
            if not -(1 << 21) <= disp < (1 << 21):
                raise AssemblerError("branch target out of range", line)
            return [S.enc_branch(S.COND_BY_NAME[name].cond, disp, annul)]
        if name == "call":
            target = self._value(ops[0], symbols, line)
            disp = (target - item.addr) // 4
            return [S.enc_call(disp)]
        if name == "sethi":
            imm = self._value(ops[0], symbols, line)
            rd = S.parse_register(ops[1])
            return [S.enc_sethi(rd, imm)]
        if name == "jmpl":
            rs1, second = self._address(ops[0], symbols, line, allow_bare=True)
            rd = S.parse_register(ops[1])
            if isinstance(second, int):
                return [S.enc_arith_imm(S.ARITH_BY_NAME["jmpl"].op3, rd, rs1, second)]
            return [S.enc_arith_reg(S.ARITH_BY_NAME["jmpl"].op3, rd, rs1, second[0])]
        if name in S.ARITH_BY_NAME:
            rs1 = S.parse_register(ops[0])
            second = self._operand(ops[1], symbols, line)
            rd = S.parse_register(ops[2])
            return [self._alu(name, rs1, second, rd, line)]
        if name in S.MEM_BY_NAME:
            spec = S.MEM_BY_NAME[name]
            if spec.is_store:
                rd = S.parse_register(ops[0])
                rs1, second = self._address(ops[1], symbols, line)
            else:
                rs1, second = self._address(ops[0], symbols, line)
                rd = S.parse_register(ops[1])
            if isinstance(second, int):
                return [S.enc_mem_imm(spec.op3, rd, rs1, second)]
            return [S.enc_mem_reg(spec.op3, rd, rs1, second[0])]
        raise AssemblerError(f"unknown mnemonic {name!r}", line)

    def _encode_set(self, ops: list[str], symbols: dict[str, int], line: int) -> list[int]:
        # Width must match what pass one reserved: one word only when the
        # operand is a *literal* that fits simm13, two words otherwise.
        literal = _try_int(ops[0])
        rd = S.parse_register(ops[1])
        if literal is not None and -4096 <= literal <= 4095:
            return [S.enc_arith_imm(S.ARITH_BY_NAME["or"].op3, rd, 0, literal)]
        value = self._value(ops[0], symbols, line) & 0xFFFFFFFF
        return [
            S.enc_sethi(rd, value >> 10),
            S.enc_arith_imm(S.ARITH_BY_NAME["or"].op3, rd, rd, value & 0x3FF),
        ]

    def _alu(self, name: str, rs1: int, second, rd: int, line: int) -> int:
        spec = S.ARITH_BY_NAME[name]
        if isinstance(second, int):
            if not -4096 <= second <= 4095:
                raise AssemblerError(f"immediate {second} out of simm13 range", line)
            return S.enc_arith_imm(spec.op3, rd, rs1, second)
        return S.enc_arith_reg(spec.op3, rd, rs1, second[0])

    def _operand(self, text: str, symbols: dict[str, int], line: int):
        """A register (returned as a 1-tuple) or an immediate int."""
        text = text.strip()
        if text.startswith("%") and not _HI_RE.match(text) and not _LO_RE.match(text):
            return (S.parse_register(text),)
        return self._value(text, symbols, line)

    def _address(self, text: str, symbols: dict[str, int], line: int, allow_bare: bool = False):
        """Parse ``[%rs1 + off]`` / ``[%rs1 + %rs2]`` / ``[%rs1]`` forms."""
        text = text.strip()
        if text.startswith("[") and text.endswith("]"):
            text = text[1:-1].strip()
        elif not allow_bare:
            raise AssemblerError(f"expected [address] operand, got {text!r}", line)
        for sep in ("+", "-"):
            depth = 0
            for idx, ch in enumerate(text):
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                elif ch == sep and idx > 0 and depth == 0:
                    left = text[:idx].strip()
                    right = text[idx + 1 :].strip()
                    rs1 = S.parse_register(left)
                    second = self._operand(right, symbols, line)
                    if sep == "-":
                        if isinstance(second, tuple):
                            raise AssemblerError("register offsets cannot be negated", line)
                        second = -second
                    return rs1, second
        if text.startswith("%"):
            return S.parse_register(text), 0
        return 0, self._value(text, symbols, line)


def _strip_comment(line: str) -> str:
    for marker in ("!", "#", ";"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line


def _split_operands(text: str) -> list[str]:
    """Split on commas not inside brackets or parens."""
    parts: list[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _try_int(text: str) -> int | None:
    try:
        return int(text.strip(), 0)
    except ValueError:
        return None


def assemble(source: str, **kwargs) -> Program:
    """Assemble SPARC-lite source text into a :class:`Program`."""
    return Assembler(**kwargs).assemble(source)
