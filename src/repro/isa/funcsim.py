"""Functional (architectural) simulator for SPARC-lite, in Python.

This is the golden model: the OOO timing simulators and the Facile-
generated simulators are all co-simulated against it in the tests.  It
implements the full user-visible semantics: delay slots via the
``(PC, nPC)`` pair, annulled branches, condition codes, loads/stores,
``call``/``jmpl`` linkage, and the ``halt`` instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..facile.builtins import cc_add, cc_branch_taken, cc_logic, cc_sub
from ..facile.runtime import Memory
from . import sparclite as S
from .program import Program

_U32 = 0xFFFFFFFF


@dataclass
class StepInfo:
    """What one instruction did — consumed by the timing models."""

    pc: int
    word: int
    decoded: S.Decoded
    next_pc: int
    next_npc: int
    is_branch: bool = False
    taken: bool = False
    target: int = 0
    annulled_slot: bool = False
    mem_addr: int | None = None
    halted: bool = False


@dataclass
class FunctionalSim:
    """Architectural state plus a single-instruction step function."""

    mem: Memory = field(default_factory=Memory)
    regs: list[int] = field(default_factory=lambda: [0] * S.NUM_REGS)
    cc: int = 0
    pc: int = 0
    npc: int = 0
    halted: bool = False
    instret: int = 0
    _annul_next: bool = False

    @classmethod
    def for_program(cls, program: Program) -> "FunctionalSim":
        sim = cls()
        program.load_into(sim.mem)
        sim.pc = program.entry
        sim.npc = program.entry + 4
        sim.regs[14] = program.stack_top  # %sp
        return sim

    # -- register helpers ------------------------------------------------------

    def read_reg(self, n: int) -> int:
        return 0 if n == 0 else self.regs[n]

    def write_reg(self, n: int, value: int) -> None:
        if n != 0:
            self.regs[n] = value & _U32

    # -- one architectural step ---------------------------------------------------

    def step(self) -> StepInfo:
        """Execute the instruction at PC; advance (PC, nPC)."""
        pc = self.pc
        if self._annul_next:
            # The delay-slot instruction was annulled: skip it without
            # executing, charging no architectural effect.
            self._annul_next = False
            info = StepInfo(pc, 0, S.Decoded(kind="annulled", cls=S.CLS_IALU), self.npc, self.npc + 4)
            info.annulled_slot = True
            self.pc = self.npc
            self.npc = self.npc + 4
            return info
        word = self.mem.read32(pc)
        d = S.decode(word)
        return self.exec_decoded(d, pc, word)

    def exec_decoded(self, d: S.Decoded, pc: int, word: int = 0) -> StepInfo:
        """Execute an already-decoded instruction at `pc`.

        This is the fast path used by memoizing replay: the fetch and
        decode work is skipped because target text is run-time static.
        The caller guarantees ``self.pc == pc`` and that this step is
        not an annulled delay slot.
        """
        new_pc = self.npc
        new_npc = self.npc + 4
        info = StepInfo(pc, word, d, new_pc, new_npc)

        if d.kind == "arith":
            self._arith(d)
        elif d.kind == "mem":
            info.mem_addr = self._mem(d)
        elif d.kind == "sethi":
            self.write_reg(d.rd, d.imm << 10)
        elif d.kind == "call":
            self.write_reg(15, pc)
            info.is_branch = True
            info.taken = True
            info.target = (pc + d.disp) & _U32
            new_npc = info.target
        elif d.kind == "branch":
            info.is_branch = True
            taken = cc_branch_taken(d.cond, self.cc)
            info.taken = taken
            info.target = (pc + d.disp) & _U32
            if taken:
                new_npc = info.target
                if d.annul and d.cond == 0b1000:  # ba,a annuls its slot
                    self._annul_next = True
            else:
                if d.annul:
                    self._annul_next = True
        elif d.kind == "halt":
            self.halted = True
            info.halted = True
        elif d.kind == "illegal":
            self.halted = True
            info.halted = True
        else:  # pragma: no cover - decode covers all kinds
            raise AssertionError(d.kind)

        if d.name == "jmpl":
            op2 = d.imm if d.use_imm else self.read_reg(d.rs2)
            target = (self.read_reg(d.rs1) + op2) & _U32
            self.write_reg(d.rd, pc)
            info.is_branch = True
            info.taken = True
            info.target = target
            new_npc = target

        info.next_pc = new_pc
        info.next_npc = new_npc
        self.pc = new_pc
        self.npc = new_npc
        self.instret += 1
        return info

    def run(self, max_steps: int = 1_000_000) -> int:
        steps = 0
        while not self.halted and steps < max_steps:
            self.step()
            steps += 1
        return steps

    # -- instruction groups -----------------------------------------------------------

    def _arith(self, d: S.Decoded) -> None:
        spec = S.ARITH_BY_NAME[d.name]
        if d.name == "jmpl":
            return  # handled by the caller for (PC, nPC) sequencing
        a = self.read_reg(d.rs1)
        b = d.imm if d.use_imm else self.read_reg(d.rs2)
        b &= _U32
        if spec.kind == "shift":
            shift = b & 31
            if d.name == "sll":
                result = (a << shift) & _U32
            elif d.name == "srl":
                result = (a & _U32) >> shift
            else:  # sra
                result = (S._sext(a, 32) >> shift) & _U32
            self.write_reg(d.rd, result)
            return
        base = d.name[:-2] if spec.sets_cc else d.name
        if base == "add":
            result = (a + b) & _U32
            if spec.sets_cc:
                self.cc = cc_add(a, b)
        elif base == "sub":
            result = (a - b) & _U32
            if spec.sets_cc:
                self.cc = cc_sub(a, b)
        elif base == "and":
            result = a & b
        elif base == "or":
            result = a | b
        elif base == "xor":
            result = a ^ b
        elif base == "umul":
            result = (a * b) & _U32
        elif base == "udiv":
            result = (a // b) & _U32 if b else 0
        else:  # pragma: no cover
            raise AssertionError(d.name)
        if spec.sets_cc and base not in ("add", "sub"):
            self.cc = cc_logic(result)
        self.write_reg(d.rd, result)

    def _mem(self, d: S.Decoded) -> int:
        spec = S.MEM_BY_NAME[d.name]
        offset = d.imm if d.use_imm else self.read_reg(d.rs2)
        addr = (self.read_reg(d.rs1) + offset) & _U32
        if spec.is_store:
            value = self.read_reg(d.rd)
            if spec.width == 4:
                self.mem.write32(addr, value)
            elif spec.width == 2:
                self.mem.write16(addr, value)
            else:
                self.mem.write8(addr, value)
        else:
            if spec.width == 4:
                value = self.mem.read32(addr)
            elif spec.width == 2:
                value = self.mem.read16(addr)
            else:
                value = self.mem.read8(addr)
            self.write_reg(d.rd, value)
        return addr
